//! Crash-consistent write-ahead journal for serve runs.
//!
//! A journal is a JSONL file: one [`RunHeader`] line followed by one
//! [`JobEntry`] line per finished job, appended **in submission order**
//! and fsync'd record-by-record, so the file is always a valid prefix of
//! the run plus at most one torn trailing line. Every line carries an
//! FNV-1a content checksum (the same [`fnv1a`] the plan cache uses), so
//! a torn or corrupted tail is *detected and truncated* on resume rather
//! than silently replayed:
//!
//! ```text
//! {"crc":"7d61…","rec":{"type":"header","version":1,"manifest":"ab…",…}}
//! {"crc":"90ff…","rec":{"type":"job","job":0,"label":"vgg16",…,"ok":true,…}}
//! ```
//!
//! **Resume invariants.** A journal binds to one exact run: the header
//! records a fingerprint of the fully-expanded job list (labels, machine
//! fingerprints, program content hashes, modes, exec seeds), the combined
//! machine fingerprints, the fault seed and a fingerprint of the fault
//! spec. [`Journal::resume`] re-derives the same header from the current
//! manifest and refuses — with a [`JournalError::Mismatch`] naming the
//! first differing field — to replay records onto a different run, so a
//! resumed report is guaranteed to merge outputs that the interrupted run
//! itself produced. Records are keyed by job index; a record whose index
//! is out of range or repeated marks the end of the trustworthy prefix
//! (the tail after it is truncated like a torn line).
//!
//! The writer controls the exact byte layout, so the parser is a strict
//! sequential scanner: *any* deviation — a flipped byte, a missing brace,
//! an unknown field — fails the line, and the checksum catches the
//! (astronomically unlikely) flips the grammar would accept.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::fault::fnv1a;
use crate::serve::{json_str, JobOutput};

/// Journal format version; bumped on any layout change.
pub const JOURNAL_VERSION: u32 = 1;

/// The first record of every journal: the identity of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHeader {
    /// [`JOURNAL_VERSION`] at write time.
    pub version: u32,
    /// Fingerprint of the fully-expanded job list (see the module docs).
    pub manifest: u64,
    /// Combined fingerprint of every job's machine structure.
    pub machines: u64,
    /// The fault plan's seed (`None` when no faults are injected).
    pub fault_seed: Option<u64>,
    /// Fingerprint of the fault spec's rates (0 when no plan).
    pub fault_spec: u64,
    /// Total jobs the run will produce.
    pub jobs: u64,
}

/// One finished job, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Submission index (0-based, manifest order).
    pub index: u64,
    /// The spec's output tag.
    pub label: String,
    /// The spec's machine name.
    pub machine: String,
    /// `"simulate"` or `"exec"`.
    pub mode: &'static str,
    /// The deterministic payload, or the terminal failure message.
    pub outcome: Result<JobOutput, String>,
}

/// One accepted-but-not-yet-finished job, as journaled by the HTTP job
/// API *before* the job id is acknowledged to the client. The spec is
/// the canonical manifest line the submission parsed to, so a resume
/// can re-create and re-run the job under the same id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedEntry {
    /// The job id the client was (about to be) given.
    pub index: u64,
    /// The canonical manifest line of the accepted spec.
    pub spec: String,
}

/// Any journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The run-identity header (always line 1).
    Header(RunHeader),
    /// A finished job.
    Job(JobEntry),
    /// A durably-accepted job the API has not yet finished (the
    /// write-ahead half of the acceptance handshake).
    Accepted(AcceptedEntry),
}

/// Why a single journal line did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The `{"crc":"…","rec":…}` envelope is malformed or incomplete.
    Framing(&'static str),
    /// The stored checksum does not match the record's content.
    Checksum {
        /// The checksum the line carries.
        stored: u64,
        /// The checksum its content hashes to.
        computed: u64,
    },
    /// The envelope is intact but the record grammar is not.
    Grammar(&'static str),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Framing(what) => write!(f, "bad record framing: {what}"),
            RecordError::Checksum { stored, computed } => {
                write!(f, "checksum mismatch: line says {stored:016x}, content is {computed:016x}")
            }
            RecordError::Grammar(what) => write!(f, "bad record grammar: {what}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Why a journal could not be created, resumed or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure on the journal file.
    Io {
        /// The journal path.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The journal's first line is not a valid header record.
    NoHeader {
        /// The journal path.
        path: String,
        /// Why the line failed.
        reason: RecordError,
    },
    /// The file ends inside the run-identity header: the very first
    /// append was torn by a crash before its newline reached disk, so
    /// the journal never recorded which run it belongs to.
    TruncatedHeader {
        /// The journal path.
        path: String,
        /// Where the file ends, in bytes from the start (= the file
        /// length, since the torn header is the only content).
        offset: u64,
    },
    /// The journal belongs to a different run; resume refused.
    Mismatch {
        /// The first header field that differs.
        field: &'static str,
        /// The journaled value.
        journal: String,
        /// The current run's value.
        current: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => write!(f, "journal {path}: {message}"),
            JournalError::NoHeader { path, reason } => {
                write!(f, "journal {path}: no valid header record ({reason})")
            }
            JournalError::TruncatedHeader { path, offset } => write!(
                f,
                "journal {path}: truncated run-identity header (file ends mid-line at byte \
                 offset {offset}; the header never became durable, so there is nothing to \
                 resume — delete the journal or re-run without --resume)"
            ),
            JournalError::Mismatch { field, journal, current } => write!(
                f,
                "journal mismatch on {field}: journal has {journal}, current run has {current} \
                 (refusing to resume onto a different run)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Encodes one record as its journal line (no trailing newline).
pub fn encode_record(record: &Record) -> String {
    let rec = match record {
        Record::Header(h) => {
            let seed = match h.fault_seed {
                Some(s) => format!("\"{s:016x}\""),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"header\",\"version\":{},\"manifest\":\"{:016x}\",\"machines\":\"{:016x}\",\"fault_seed\":{seed},\"fault_spec\":\"{:016x}\",\"jobs\":{}}}",
                h.version, h.manifest, h.machines, h.fault_spec, h.jobs,
            )
        }
        Record::Job(j) => {
            let head = format!(
                "{{\"type\":\"job\",\"job\":{},\"label\":{},\"machine\":{},\"mode\":{}",
                j.index,
                json_str(&j.label),
                json_str(&j.machine),
                json_str(j.mode),
            );
            match &j.outcome {
                Ok(JobOutput::Sim {
                    makespan_s,
                    steady_s,
                    attained_tops,
                    peak_fraction,
                    root_intensity,
                }) => format!(
                    "{head},\"ok\":true,\"sim\":{{\"makespan_s\":{makespan_s:?},\"steady_s\":{steady_s:?},\"attained_tops\":{attained_tops:?},\"peak_fraction\":{peak_fraction:?},\"root_intensity\":{root_intensity:?}}}}}"
                ),
                Ok(JobOutput::Exec { elems, memory_hash }) => format!(
                    "{head},\"ok\":true,\"exec\":{{\"elems\":{elems},\"memory_hash\":\"{memory_hash:016x}\"}}}}"
                ),
                Err(message) => format!("{head},\"ok\":false,\"error\":{}}}", json_str(message)),
            }
        }
        Record::Accepted(a) => {
            format!("{{\"type\":\"accept\",\"job\":{},\"spec\":{}}}", a.index, json_str(&a.spec))
        }
    };
    format!("{{\"crc\":\"{:016x}\",\"rec\":{rec}}}", fnv1a(rec.as_bytes()))
}

/// Parses one journal line (without its newline), verifying the checksum.
///
/// # Errors
///
/// [`RecordError::Framing`] for a malformed envelope,
/// [`RecordError::Checksum`] when the content does not hash to the stored
/// checksum, [`RecordError::Grammar`] for a record body the scanner does
/// not recognise.
pub fn parse_record(line: &str) -> Result<Record, RecordError> {
    let rest = line.strip_prefix("{\"crc\":\"").ok_or(RecordError::Framing("no crc prefix"))?;
    if rest.len() < 16 || !rest.is_char_boundary(16) {
        return Err(RecordError::Framing("truncated crc"));
    }
    let (crc_hex, rest) = rest.split_at(16);
    let stored =
        u64::from_str_radix(crc_hex, 16).map_err(|_| RecordError::Framing("non-hex crc"))?;
    let rec = rest
        .strip_prefix("\",\"rec\":")
        .and_then(|r| r.strip_suffix('}'))
        .ok_or(RecordError::Framing("no rec envelope"))?;
    let computed = fnv1a(rec.as_bytes());
    if computed != stored {
        return Err(RecordError::Checksum { stored, computed });
    }
    parse_rec_body(rec)
}

fn parse_rec_body(rec: &str) -> Result<Record, RecordError> {
    let mut c = Cursor { s: rec };
    c.lit("{\"type\":\"")?;
    if c.eat("header\",") {
        c.lit("\"version\":")?;
        let version = c.u64()? as u32;
        c.lit(",\"manifest\":\"")?;
        let manifest = c.hex16()?;
        c.lit("\",\"machines\":\"")?;
        let machines = c.hex16()?;
        c.lit("\",\"fault_seed\":")?;
        let fault_seed = if c.eat("null") {
            None
        } else {
            c.lit("\"")?;
            let s = c.hex16()?;
            c.lit("\"")?;
            Some(s)
        };
        c.lit(",\"fault_spec\":\"")?;
        let fault_spec = c.hex16()?;
        c.lit("\",\"jobs\":")?;
        let jobs = c.u64()?;
        c.lit("}")?;
        c.end()?;
        Ok(Record::Header(RunHeader { version, manifest, machines, fault_seed, fault_spec, jobs }))
    } else if c.eat("job\",") {
        c.lit("\"job\":")?;
        let index = c.u64()?;
        c.lit(",\"label\":")?;
        let label = c.string()?;
        c.lit(",\"machine\":")?;
        let machine = c.string()?;
        c.lit(",\"mode\":")?;
        let mode = match c.string()?.as_str() {
            "simulate" => "simulate",
            "exec" => "exec",
            _ => return Err(RecordError::Grammar("unknown mode")),
        };
        c.lit(",\"ok\":")?;
        let outcome = if c.eat("true,") {
            if c.eat("\"sim\":{\"makespan_s\":") {
                let makespan_s = c.f64()?;
                c.lit(",\"steady_s\":")?;
                let steady_s = c.f64()?;
                c.lit(",\"attained_tops\":")?;
                let attained_tops = c.f64()?;
                c.lit(",\"peak_fraction\":")?;
                let peak_fraction = c.f64()?;
                c.lit(",\"root_intensity\":")?;
                let root_intensity = c.f64()?;
                c.lit("}")?;
                Ok(JobOutput::Sim {
                    makespan_s,
                    steady_s,
                    attained_tops,
                    peak_fraction,
                    root_intensity,
                })
            } else if c.eat("\"exec\":{\"elems\":") {
                let elems = c.u64()? as usize;
                c.lit(",\"memory_hash\":\"")?;
                let memory_hash = c.hex16()?;
                c.lit("\"}")?;
                Ok(JobOutput::Exec { elems, memory_hash })
            } else {
                return Err(RecordError::Grammar("unknown ok payload"));
            }
        } else if c.eat("false,\"error\":") {
            Err(c.string()?)
        } else {
            return Err(RecordError::Grammar("bad ok flag"));
        };
        c.lit("}")?;
        c.end()?;
        Ok(Record::Job(JobEntry { index, label, machine, mode, outcome }))
    } else if c.eat("accept\",") {
        c.lit("\"job\":")?;
        let index = c.u64()?;
        c.lit(",\"spec\":")?;
        let spec = c.string()?;
        c.lit("}")?;
        c.end()?;
        Ok(Record::Accepted(AcceptedEntry { index, spec }))
    } else {
        Err(RecordError::Grammar("unknown record type"))
    }
}

/// A strict sequential scanner over one record body: the writer fixes the
/// field order, so anything that does not match is corruption.
struct Cursor<'a> {
    s: &'a str,
}

impl<'a> Cursor<'a> {
    fn lit(&mut self, lit: &str) -> Result<(), RecordError> {
        self.s = self.s.strip_prefix(lit).ok_or(RecordError::Grammar("missing literal"))?;
        Ok(())
    }

    /// Consumes `lit` if present; reports whether it did.
    fn eat(&mut self, lit: &str) -> bool {
        match self.s.strip_prefix(lit) {
            Some(rest) => {
                self.s = rest;
                true
            }
            None => false,
        }
    }

    fn end(&self) -> Result<(), RecordError> {
        if self.s.is_empty() {
            Ok(())
        } else {
            Err(RecordError::Grammar("trailing bytes"))
        }
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        let digits = self.s.len() - self.s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        if digits == 0 {
            return Err(RecordError::Grammar("expected digits"));
        }
        let (num, rest) = self.s.split_at(digits);
        self.s = rest;
        num.parse().map_err(|_| RecordError::Grammar("integer overflow"))
    }

    fn hex16(&mut self) -> Result<u64, RecordError> {
        if self.s.len() < 16 || !self.s.is_char_boundary(16) {
            return Err(RecordError::Grammar("truncated hex field"));
        }
        let (hex, rest) = self.s.split_at(16);
        self.s = rest;
        u64::from_str_radix(hex, 16).map_err(|_| RecordError::Grammar("non-hex field"))
    }

    /// A float formatted with `{:?}` (round-trips exactly), delimited by
    /// the next `,` or `}`.
    fn f64(&mut self) -> Result<f64, RecordError> {
        let len = self.s.find([',', '}']).unwrap_or(self.s.len());
        let (num, rest) = self.s.split_at(len);
        self.s = rest;
        num.parse().map_err(|_| RecordError::Grammar("bad float"))
    }

    /// A quoted JSON string with the escapes [`json_str`] produces.
    fn string(&mut self) -> Result<String, RecordError> {
        self.lit("\"")?;
        let mut out = String::new();
        let mut chars = self.s.char_indices();
        loop {
            let (i, ch) = chars.next().ok_or(RecordError::Grammar("unterminated string"))?;
            match ch {
                '"' => {
                    self.s = &self.s[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or(RecordError::Grammar("dangling escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) =
                                    chars.next().ok_or(RecordError::Grammar("short \\u"))?;
                                let digit = h
                                    .to_digit(16)
                                    .ok_or(RecordError::Grammar("non-hex \\u digit"))?;
                                code = code * 16 + digit;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or(RecordError::Grammar("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(RecordError::Grammar("unknown escape")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

/// What one journal compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// On-disk bytes before the rewrite.
    pub bytes_before: u64,
    /// On-disk bytes after the rewrite.
    pub bytes_after: u64,
    /// Records dropped by the rewrite (failed entries, which get a
    /// fresh chance on resume, plus any out-of-contract lines).
    pub dropped: u64,
}

impl CompactionStats {
    /// Bytes the rewrite gave back.
    pub fn reclaimed(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

/// Rewrites a journal image to its compacted form: the canonical
/// re-encoding of the run-identity header plus every *successful* job
/// entry of the valid prefix, in order. Failed entries are dropped — on
/// resume those jobs re-run instead of replaying the recorded failure —
/// and so is any torn or out-of-contract tail. Acceptance records are
/// kept only while no successful completion for the same index exists
/// (a still-owed job must survive the rewrite so resume can re-run it);
/// once the completion is durable the accept is redundant and dropped.
/// Idempotent: compacting a compacted image returns it byte-identically.
pub fn compact_image(bytes: &[u8], jobs: u64) -> (Vec<u8>, CompactionStats) {
    let (records, valid_len) = scan_valid_prefix(bytes, jobs);
    let settled: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            Record::Job(e) if e.outcome.is_ok() => Some(e.index),
            _ => None,
        })
        .collect();
    let mut out = Vec::with_capacity(valid_len as usize);
    let mut dropped = 0u64;
    for record in &records {
        let keep = match record {
            Record::Header(_) => true,
            Record::Job(e) => e.outcome.is_ok(),
            Record::Accepted(a) => !settled.contains(&a.index),
        };
        if keep {
            out.extend_from_slice(encode_record(record).as_bytes());
            out.push(b'\n');
        } else {
            dropped += 1;
        }
    }
    let stats = CompactionStats {
        bytes_before: bytes.len() as u64,
        bytes_after: out.len() as u64,
        dropped,
    };
    (out, stats)
}

/// What [`Journal::resume`] recovered from an existing journal.
#[derive(Debug)]
pub struct Recovery {
    /// The journaled jobs, in journal (= submission) order. When resume
    /// compacted the journal, failed entries are dropped from here too
    /// (the file no longer records them, so those jobs re-run).
    pub entries: Vec<JobEntry>,
    /// Durably-accepted jobs, in journal order. Entries whose index also
    /// appears in [`Recovery::entries`] already finished; the rest are
    /// journaled-but-unanswered and must be re-run by the resumer.
    pub accepted: Vec<AcceptedEntry>,
    /// Bytes of torn/corrupt tail that were truncated away (0 for a
    /// cleanly-closed journal).
    pub truncated_bytes: u64,
    /// The resume-time compaction, when
    /// [`Journal::resume_opts`]'s threshold triggered one.
    pub compaction: Option<CompactionStats>,
}

/// An open, append-only journal file (see the module docs).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    bytes: u64,
    /// Total jobs of the run (from the header); the scan contract for
    /// compaction rewrites.
    jobs: u64,
    /// Current on-disk length.
    file_bytes: u64,
    /// Bytes held by failed-entry lines and by acceptance records whose
    /// completion is durable — what compaction can give back.
    reclaimable: u64,
    /// Line bytes of acceptance records not yet superseded by a
    /// successful completion, keyed by job index.
    pending_accepts: std::collections::HashMap<u64, u64>,
}

impl Journal {
    /// Creates (or truncates) a journal at `path` and durably writes the
    /// run header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn create(path: &Path, header: &RunHeader) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            bytes: 0,
            jobs: header.jobs,
            file_bytes: 0,
            reclaimable: 0,
            pending_accepts: std::collections::HashMap::new(),
        };
        journal.append_line(&encode_record(&Record::Header(header.clone())))?;
        Ok(journal)
    }

    /// Opens an existing journal for resumption: verifies its header
    /// against `header` (the identity of the *current* run), recovers the
    /// valid record prefix, truncates any torn or corrupt tail in place,
    /// and re-opens for appending.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures,
    /// [`JournalError::NoHeader`] when line 1 is unreadable, and
    /// [`JournalError::Mismatch`] when the journal belongs to a different
    /// manifest, machine set, fault seed/spec or job count.
    pub fn resume(path: &Path, header: &RunHeader) -> Result<(Journal, Recovery), JournalError> {
        Journal::resume_opts(path, header, 0)
    }

    /// [`resume`](Journal::resume) with a compaction threshold: after
    /// recovery, a journal whose on-disk size is at least
    /// `compact_threshold` bytes (0 disables) is rewritten via
    /// [`compact_image`], dropping failed entries (those jobs re-run)
    /// and reporting the rewrite in [`Recovery::compaction`].
    ///
    /// # Errors
    ///
    /// Everything [`resume`](Journal::resume) reports, plus
    /// [`JournalError::TruncatedHeader`] when the file is non-empty but
    /// ends inside its first line — a crash tore the run-identity header
    /// itself, so there is no run to verify against.
    pub fn resume_opts(
        path: &Path,
        header: &RunHeader,
        compact_threshold: u64,
    ) -> Result<(Journal, Recovery), JournalError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err(path, &e))?;

        if !bytes.is_empty() && !bytes.contains(&b'\n') {
            return Err(JournalError::TruncatedHeader {
                path: path.display().to_string(),
                offset: bytes.len() as u64,
            });
        }

        let (records, valid_len) = scan_valid_prefix(&bytes, header.jobs);
        let mut records = records.into_iter();
        let journaled = match records.next() {
            Some(Record::Header(h)) => h,
            _ => {
                let reason = first_line_error(&bytes);
                return Err(JournalError::NoHeader { path: path.display().to_string(), reason });
            }
        };
        check_header(&journaled, header)?;
        let mut entries: Vec<JobEntry> = Vec::new();
        let mut accepted: Vec<AcceptedEntry> = Vec::new();
        for r in records {
            match r {
                Record::Job(e) => entries.push(e),
                Record::Accepted(a) => accepted.push(a),
                // scan_valid_prefix admits a header only at line 1.
                Record::Header(_) => unreachable!("header past line 1 survived the scan"),
            }
        }

        let truncated_bytes = bytes.len() as u64 - valid_len;
        let file =
            OpenOptions::new().write(true).read(true).open(path).map_err(|e| io_err(path, &e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, &e))?;
        file.sync_data().map_err(|e| io_err(path, &e))?;
        let settled: std::collections::HashSet<u64> =
            entries.iter().filter(|e| e.outcome.is_ok()).map(|e| e.index).collect();
        // Journaled lines are canonical (we wrote them), so the
        // re-encoding is exactly the on-disk line.
        let failed_bytes: u64 = entries
            .iter()
            .filter(|e| e.outcome.is_err())
            .map(|e| encode_record(&Record::Job(e.clone())).len() as u64 + 1)
            .sum();
        let stale_accept_bytes: u64 = accepted
            .iter()
            .filter(|a| settled.contains(&a.index))
            .map(|a| encode_record(&Record::Accepted((*a).clone())).len() as u64 + 1)
            .sum();
        let pending_accepts = accepted
            .iter()
            .filter(|a| !settled.contains(&a.index))
            .map(|a| (a.index, encode_record(&Record::Accepted((*a).clone())).len() as u64 + 1))
            .collect();
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            bytes: 0,
            jobs: header.jobs,
            file_bytes: valid_len,
            reclaimable: failed_bytes + stale_accept_bytes,
            pending_accepts,
        };
        journal.seek_end(valid_len)?;
        let compaction = if compact_threshold > 0 && journal.file_bytes >= compact_threshold {
            let stats = journal.compact()?;
            // The file no longer records the failed entries: drop them
            // from the recovery too, so the resumed run re-runs them
            // (and journals their fresh outcomes) instead of replaying
            // failures the journal has forgotten. Accepts that were
            // settled successfully are gone from the file as well.
            entries.retain(|e| e.outcome.is_ok());
            accepted.retain(|a| !settled.contains(&a.index));
            Some(stats)
        } else {
            None
        };
        Ok((journal, Recovery { entries, accepted, truncated_bytes, compaction }))
    }

    /// Rewrites the journal in place to its compacted form (see
    /// [`compact_image`]): the rewrite goes to a temporary file that is
    /// fsync'd and atomically renamed over the journal, so a crash
    /// during compaction leaves either the old or the new file — never a
    /// mix.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn compact(&mut self) -> Result<CompactionStats, JournalError> {
        let mut bytes = Vec::new();
        File::open(&self.path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err(&self.path, &e))?;
        let (image, stats) = compact_image(&bytes, self.jobs);
        let mut tmp_name = self.path.as_os_str().to_owned();
        tmp_name.push(".compact");
        let tmp = PathBuf::from(tmp_name);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err(&tmp, &e))?;
            f.write_all(&image).and_then(|()| f.sync_data()).map_err(|e| io_err(&tmp, &e))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, &e))?;
        self.file = OpenOptions::new()
            .write(true)
            .read(true)
            .open(&self.path)
            .map_err(|e| io_err(&self.path, &e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, &e))?;
        self.file_bytes = image.len() as u64;
        self.reclaimable = 0;
        self.seek_end(self.file_bytes)?;
        Ok(stats)
    }

    /// [`compact`](Journal::compact) guarded by a size threshold: only
    /// rewrites when the file has reached `threshold` bytes (0 disables)
    /// *and* there are reclaimable (failed-entry) bytes to give back, so
    /// an append-heavy run does not rewrite the file on every record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn maybe_compact(
        &mut self,
        threshold: u64,
    ) -> Result<Option<CompactionStats>, JournalError> {
        if threshold == 0 || self.file_bytes < threshold || self.reclaimable == 0 {
            return Ok(None);
        }
        self.compact().map(Some)
    }

    fn seek_end(&mut self, len: u64) -> Result<(), JournalError> {
        use std::io::{Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(len)).map_err(|e| io_err(&self.path, &e))?;
        Ok(())
    }

    /// Durably appends one finished job (write + fsync). A successful
    /// completion supersedes any pending acceptance record for the same
    /// index: the accept's bytes become reclaimable by compaction.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn append(&mut self, entry: &JobEntry) -> Result<(), JournalError> {
        let line = encode_record(&Record::Job(entry.clone()));
        self.append_line(&line)?;
        if entry.outcome.is_err() {
            self.reclaimable += line.len() as u64 + 1;
        } else if let Some(accept_bytes) = self.pending_accepts.remove(&entry.index) {
            self.reclaimable += accept_bytes;
        }
        Ok(())
    }

    /// Durably appends one acceptance record (write + fsync) — the
    /// write-ahead half of the job API's acceptance handshake. Must
    /// reach disk *before* the job id is acknowledged to the client.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn append_accept(&mut self, accept: &AcceptedEntry) -> Result<(), JournalError> {
        let line = encode_record(&Record::Accepted(accept.clone()));
        self.append_line(&line)?;
        self.pending_accepts.insert(accept.index, line.len() as u64 + 1);
        Ok(())
    }

    /// Forces journal bytes to durable storage. Appends already fsync
    /// record-by-record, so this is a final barrier for drain paths that
    /// must not exit with anything buffered.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, &e))
    }

    fn append_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))?;
        self.bytes += line.len() as u64 + 1;
        self.file_bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Bytes this handle has appended (header included for fresh
    /// journals; 0 right after a resume).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes
    }

    /// Current on-disk length of the journal file.
    pub fn file_len(&self) -> u64 {
        self.file_bytes
    }

    /// Bytes currently held by failed-entry lines — what a compaction
    /// would reclaim.
    pub fn reclaimable_bytes(&self) -> u64 {
        self.reclaimable
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Field-by-field header comparison; the error names the first mismatch.
fn check_header(journaled: &RunHeader, current: &RunHeader) -> Result<(), JournalError> {
    let mismatch = |field, journal: String, now: String| {
        Err(JournalError::Mismatch { field, journal, current: now })
    };
    if journaled.version != current.version {
        return mismatch(
            "journal version",
            journaled.version.to_string(),
            current.version.to_string(),
        );
    }
    if journaled.manifest != current.manifest {
        return mismatch(
            "manifest fingerprint",
            format!("{:016x}", journaled.manifest),
            format!("{:016x}", current.manifest),
        );
    }
    if journaled.machines != current.machines {
        return mismatch(
            "machine fingerprints",
            format!("{:016x}", journaled.machines),
            format!("{:016x}", current.machines),
        );
    }
    if journaled.fault_seed != current.fault_seed {
        let show = |s: Option<u64>| s.map_or("none".to_string(), |v| v.to_string());
        return mismatch("fault_seed", show(journaled.fault_seed), show(current.fault_seed));
    }
    if journaled.fault_spec != current.fault_spec {
        return mismatch(
            "fault spec",
            format!("{:016x}", journaled.fault_spec),
            format!("{:016x}", current.fault_spec),
        );
    }
    if journaled.jobs != current.jobs {
        return mismatch("job count", journaled.jobs.to_string(), current.jobs.to_string());
    }
    Ok(())
}

/// Why the first line failed, for [`JournalError::NoHeader`] reporting.
fn first_line_error(bytes: &[u8]) -> RecordError {
    let line_bytes = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    match std::str::from_utf8(line_bytes) {
        Ok(line) => parse_record(line).err().unwrap_or(RecordError::Grammar("not a header")),
        Err(_) => RecordError::Framing("not UTF-8"),
    }
}

/// Scans the longest valid record prefix of a journal image: complete,
/// checksum-verified lines with a header first and in-contract job
/// records after (index `< jobs`, no repeats — acceptance records keep
/// their own index set, since a job may legitimately appear once as an
/// accept and once as its completion). Returns the records and the byte
/// length of the valid prefix — everything past it (a torn final line
/// after a crash, or a corrupted tail) is to be truncated.
pub fn scan_valid_prefix(bytes: &[u8], jobs: u64) -> (Vec<Record>, u64) {
    let mut records = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut seen_accepts = std::collections::HashSet::new();
    let mut valid_len = 0u64;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break; // torn trailing line: no terminator
        };
        let line_bytes = &bytes[pos..pos + nl];
        let Ok(line) = std::str::from_utf8(line_bytes) else { break };
        let Ok(record) = parse_record(line) else { break };
        let in_contract = match (&record, records.is_empty()) {
            (Record::Header(_), true) => true,
            (Record::Job(e), false) => e.index < jobs && seen.insert(e.index),
            (Record::Accepted(a), false) => a.index < jobs && seen_accepts.insert(a.index),
            _ => false,
        };
        if !in_contract {
            break;
        }
        records.push(record);
        pos += nl + 1;
        valid_len = pos as u64;
    }
    (records, valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RunHeader {
        RunHeader {
            version: JOURNAL_VERSION,
            manifest: 0xAB12,
            machines: 0xCD34,
            fault_seed: Some(7),
            fault_spec: 0xEF56,
            jobs: 3,
        }
    }

    fn sim_entry(index: u64) -> JobEntry {
        JobEntry {
            index,
            label: "vgg\"16\\x".into(),
            machine: "f1".into(),
            mode: "simulate",
            outcome: Ok(JobOutput::Sim {
                makespan_s: 0.001_234_567_89,
                steady_s: 9.87e-4,
                attained_tops: 1.5,
                peak_fraction: 0.25,
                root_intensity: 31.75,
            }),
        }
    }

    #[test]
    fn records_round_trip() {
        let exec = JobEntry {
            index: 2,
            label: "kmeans".into(),
            machine: "tiny".into(),
            mode: "exec",
            outcome: Ok(JobOutput::Exec { elems: 4096, memory_hash: 0xDEAD_BEEF }),
        };
        let failed = JobEntry {
            index: 1,
            label: "x\ty".into(),
            machine: "f100".into(),
            mode: "exec",
            outcome: Err("job panicked: \"boom\"\n".into()),
        };
        for record in [
            Record::Header(header()),
            Record::Header(RunHeader { fault_seed: None, ..header() }),
            Record::Job(sim_entry(0)),
            Record::Job(exec),
            Record::Job(failed),
        ] {
            let line = encode_record(&record);
            assert_eq!(parse_record(&line).unwrap(), record, "{line}");
        }
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let line = encode_record(&Record::Job(sim_entry(0)));
        // Flip one content byte: checksum must catch it.
        let mut corrupt = line.clone().into_bytes();
        let target = corrupt.len() - 5;
        corrupt[target] ^= 0x01;
        let corrupt = String::from_utf8(corrupt).unwrap();
        assert!(parse_record(&corrupt).is_err(), "{corrupt}");
        // Any proper prefix must fail too (framing or checksum).
        for cut in 0..line.len() {
            assert!(parse_record(&line[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn scan_stops_at_torn_line_and_bad_records() {
        let h = encode_record(&Record::Header(header()));
        let j0 = encode_record(&Record::Job(sim_entry(0)));
        let j1 = encode_record(&Record::Job(sim_entry(1)));
        let clean = format!("{h}\n{j0}\n{j1}\n");
        let (records, len) = scan_valid_prefix(clean.as_bytes(), 3);
        assert_eq!(records.len(), 3);
        assert_eq!(len, clean.len() as u64);

        // Torn final line: drop the last 7 bytes (and its newline).
        let torn = &clean[..clean.len() - 8];
        let (records, len) = scan_valid_prefix(torn.as_bytes(), 3);
        assert_eq!(records.len(), 2);
        assert_eq!(len, (h.len() + 1 + j0.len() + 1) as u64);

        // A duplicate or out-of-range index ends the trustworthy prefix.
        let dup = format!("{h}\n{j0}\n{j0}\n");
        let (records, _) = scan_valid_prefix(dup.as_bytes(), 3);
        assert_eq!(records.len(), 2);
        let wild = encode_record(&Record::Job(sim_entry(99)));
        let out_of_range = format!("{h}\n{wild}\n");
        let (records, len) = scan_valid_prefix(out_of_range.as_bytes(), 3);
        assert_eq!(records.len(), 1);
        assert_eq!(len, (h.len() + 1) as u64);

        // A header is only in contract at line 1.
        let double_header = format!("{h}\n{h}\n");
        let (records, _) = scan_valid_prefix(double_header.as_bytes(), 3);
        assert_eq!(records.len(), 1);
    }

    fn failed_entry(index: u64) -> JobEntry {
        JobEntry {
            index,
            label: "x".into(),
            machine: "f1".into(),
            mode: "simulate",
            outcome: Err("job panicked: boom".into()),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cf-journal-unit-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn compact_image_drops_failures_and_is_idempotent() {
        let mut image = Vec::new();
        for r in [
            Record::Header(header()),
            Record::Job(sim_entry(0)),
            Record::Job(failed_entry(1)),
            Record::Job(sim_entry(2)),
        ] {
            image.extend_from_slice(encode_record(&r).as_bytes());
            image.push(b'\n');
        }
        // A torn tail is dropped by the rewrite too.
        image.extend_from_slice(b"{\"crc\":\"00");

        let (compacted, stats) = compact_image(&image, 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.bytes_before, image.len() as u64);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(stats.reclaimed(), stats.bytes_before - stats.bytes_after);

        let (records, len) = scan_valid_prefix(&compacted, 3);
        assert_eq!(len as usize, compacted.len());
        assert_eq!(records.len(), 3);
        assert!(matches!(&records[0], Record::Header(h) if *h == header()));
        assert!(matches!(&records[1], Record::Job(e) if e.index == 0 && e.outcome.is_ok()));
        assert!(matches!(&records[2], Record::Job(e) if e.index == 2 && e.outcome.is_ok()));

        let (again, stats2) = compact_image(&compacted, 3);
        assert_eq!(again, compacted);
        assert_eq!(stats2.dropped, 0);
        assert_eq!(stats2.reclaimed(), 0);
    }

    #[test]
    fn truncated_header_is_reported_with_offset() {
        let path = temp_path("trunc-header");
        let line = encode_record(&Record::Header(header()));
        let cut = line.len() / 2;
        std::fs::write(&path, &line.as_bytes()[..cut]).unwrap();
        let err = Journal::resume(&path, &header()).unwrap_err();
        match &err {
            JournalError::TruncatedHeader { offset, .. } => assert_eq!(*offset, cut as u64),
            other => panic!("expected TruncatedHeader, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("truncated run-identity header"), "{msg}");
        assert!(msg.contains(&format!("byte offset {cut}")), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn on_disk_compaction_reclaims_failed_entries() {
        let path = temp_path("compact");
        let h = header();
        let mut journal = Journal::create(&path, &h).unwrap();
        journal.append(&sim_entry(0)).unwrap();
        journal.append(&failed_entry(1)).unwrap();
        let before = journal.file_len();
        assert_eq!(before, std::fs::metadata(&path).unwrap().len());
        assert!(journal.reclaimable_bytes() > 0);

        // Below the threshold: no rewrite.
        assert_eq!(journal.maybe_compact(u64::MAX).unwrap(), None);
        // At/above the threshold with reclaimable bytes: rewrite.
        let stats = journal.maybe_compact(1).unwrap().unwrap();
        assert_eq!(stats.dropped, 1);
        assert_eq!(journal.file_len(), stats.bytes_after);
        assert_eq!(journal.file_len(), std::fs::metadata(&path).unwrap().len());
        assert_eq!(journal.reclaimable_bytes(), 0);
        // Nothing left to reclaim: no further rewrite.
        assert_eq!(journal.maybe_compact(1).unwrap(), None);

        // The compacted journal stays appendable and resumable; the
        // dropped failure's index is free to be re-journaled.
        journal.append(&sim_entry(1)).unwrap();
        drop(journal);
        let (_journal, recovery) = Journal::resume(&path, &h).unwrap();
        assert_eq!(recovery.entries.len(), 2);
        assert!(recovery.entries.iter().all(|e| e.outcome.is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_opts_compacts_past_threshold_and_drops_failures() {
        let path = temp_path("resume-compact");
        let h = header();
        let mut journal = Journal::create(&path, &h).unwrap();
        journal.append(&sim_entry(0)).unwrap();
        journal.append(&failed_entry(1)).unwrap();
        drop(journal);

        // Threshold larger than the file: no compaction on resume.
        let (journal, recovery) = Journal::resume_opts(&path, &h, u64::MAX).unwrap();
        assert!(recovery.compaction.is_none());
        assert_eq!(recovery.entries.len(), 2);
        drop(journal);

        // Threshold of 1 byte: compaction fires, failures drop.
        let (journal, recovery) = Journal::resume_opts(&path, &h, 1).unwrap();
        let stats = recovery.compaction.unwrap();
        assert_eq!(stats.dropped, 1);
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.entries[0].index, 0);
        assert_eq!(journal.file_len(), std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn accept_records_round_trip_and_scan() {
        let accept = AcceptedEntry { index: 0, spec: "workload=matmul order=64 \"x\"\n".into() };
        let line = encode_record(&Record::Accepted(accept.clone()));
        assert_eq!(parse_record(&line).unwrap(), Record::Accepted(accept.clone()));

        // Accept then completion for the same index is in contract; a
        // repeated accept for the same index is not.
        let h = encode_record(&Record::Header(header()));
        let j0 = encode_record(&Record::Job(sim_entry(0)));
        let image = format!("{h}\n{line}\n{j0}\n");
        let (records, len) = scan_valid_prefix(image.as_bytes(), 3);
        assert_eq!(records.len(), 3);
        assert_eq!(len, image.len() as u64);
        let dup = format!("{h}\n{line}\n{line}\n");
        let (records, _) = scan_valid_prefix(dup.as_bytes(), 3);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn compaction_keeps_unanswered_accepts_and_drops_settled_ones() {
        let settled = AcceptedEntry { index: 0, spec: "workload=matmul".into() };
        let pending = AcceptedEntry { index: 1, spec: "workload=mlp3".into() };
        let mut image = Vec::new();
        for r in [
            Record::Header(header()),
            Record::Accepted(settled),
            Record::Accepted(pending.clone()),
            Record::Job(sim_entry(0)),
        ] {
            image.extend_from_slice(encode_record(&r).as_bytes());
            image.push(b'\n');
        }
        let (compacted, stats) = compact_image(&image, 3);
        assert_eq!(stats.dropped, 1, "only the settled accept drops");
        let (records, _) = scan_valid_prefix(&compacted, 3);
        assert_eq!(records.len(), 3);
        assert!(records.iter().any(|r| matches!(r, Record::Accepted(a) if *a == pending)));
        let (twice, stats2) = compact_image(&compacted, 3);
        assert_eq!(twice, compacted);
        assert_eq!(stats2.dropped, 0);
    }

    #[test]
    fn resume_surfaces_pending_accepts_and_reclaims_settled_ones() {
        let path = temp_path("accepts");
        let h = header();
        let mut journal = Journal::create(&path, &h).unwrap();
        journal.append_accept(&AcceptedEntry { index: 0, spec: "workload=matmul".into() }).unwrap();
        journal.append_accept(&AcceptedEntry { index: 1, spec: "workload=mlp3".into() }).unwrap();
        assert_eq!(journal.reclaimable_bytes(), 0, "pending accepts are not reclaimable");
        journal.append(&sim_entry(0)).unwrap();
        assert!(journal.reclaimable_bytes() > 0, "a settled accept becomes reclaimable");
        drop(journal);

        let (_journal, recovery) = Journal::resume(&path, &h).unwrap();
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.accepted.len(), 2);
        assert_eq!(recovery.accepted[1].index, 1);

        // Compaction on resume drops the settled accept, keeps the other.
        let (_journal, recovery) = Journal::resume_opts(&path, &h, 1).unwrap();
        assert!(recovery.compaction.is_some());
        assert_eq!(recovery.accepted.len(), 1);
        assert_eq!(recovery.accepted[0].index, 1);
        assert_eq!(recovery.accepted[0].spec, "workload=mlp3");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_names_the_field() {
        let base = header();
        let cases = [
            (RunHeader { manifest: 1, ..base.clone() }, "manifest fingerprint"),
            (RunHeader { machines: 1, ..base.clone() }, "machine fingerprints"),
            (RunHeader { fault_seed: None, ..base.clone() }, "fault_seed"),
            (RunHeader { fault_spec: 1, ..base.clone() }, "fault spec"),
            (RunHeader { jobs: 99, ..base.clone() }, "job count"),
            (RunHeader { version: 2, ..base.clone() }, "journal version"),
        ];
        for (other, field) in cases {
            match check_header(&other, &base) {
                Err(JournalError::Mismatch { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected mismatch on {field}, got {other:?}"),
            }
        }
        assert!(check_header(&base, &base).is_ok());
    }
}
