//! Property tests for the job API's incremental HTTP request parser:
//! any well-formed request parses identically no matter how the bytes
//! are torn across reads, header obs-folding joins values, bodies honor
//! the configured bound (oversized declared lengths fail before the
//! body arrives, zero-length bodies are fine), and arbitrary garbage is
//! a typed error or "need more" — never a panic.

use cf_runtime::api::{parse_request, HttpParseError};
use proptest::prelude::*;

/// Characters header values and bodies are built from: plain ASCII,
/// bytes that look like framing (`\r`-free — a raw CR inside a value
/// would change the head structure), and multi-byte UTF-8.
const VALUE_CHARS: &[char] = &['a', 'Z', '0', ' ', '_', '"', ':', '/', 'é', '界', ';', '='];

fn value_from(indices: &[usize]) -> String {
    let s: String = indices.iter().map(|&i| VALUE_CHARS[i % VALUE_CHARS.len()]).collect();
    s.trim().to_string()
}

/// Token characters for paths: no whitespace, no `?`.
const PATH_CHARS: &[char] = &['a', 'b', 'z', '0', '9', '.', '-', '_', '/'];

fn path_from(indices: &[usize]) -> String {
    let tail: String = indices.iter().map(|&i| PATH_CHARS[i % PATH_CHARS.len()]).collect();
    format!("/{tail}")
}

proptest! {
    /// A well-formed request parses to the same result from the full
    /// buffer and from every torn prefix: prefixes are `Ok(None)`
    /// ("read more"), the complete buffer parses exactly, and trailing
    /// extra bytes don't leak into the body.
    #[test]
    fn torn_reads_converge_to_the_same_parse(
        path_idx in prop::collection::vec(0usize..64, 0..12),
        header_count in 0usize..4,
        value_idx in prop::collection::vec(0usize..64, 0..10),
        body in prop::collection::vec(any::<u8>(), 0..200),
        post in any::<bool>(),
        cut in 0usize..400,
    ) {
        let method = if post { "POST" } else { "GET" };
        let path = path_from(&path_idx);
        let value = value_from(&value_idx);
        let mut raw = format!("{method} {path} HTTP/1.1\r\n");
        for i in 0..header_count {
            raw.push_str(&format!("X-H{i}: {value}\r\n"));
        }
        raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);

        let full = parse_request(&bytes, 4096).expect("well-formed").expect("complete");
        prop_assert_eq!(&full.method, method);
        prop_assert_eq!(full.path(), path.as_str());
        prop_assert_eq!(&full.body, &body);
        for i in 0..header_count {
            prop_assert_eq!(full.header(&format!("x-h{i}")), Some(value.as_str()));
        }

        // Any torn prefix asks for more bytes; nothing errors, nothing
        // parses early.
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert_eq!(parse_request(&bytes[..cut], 4096).expect("prefix"), None);

        // Extra trailing bytes (a pipelined next request) do not leak
        // into this request's body.
        bytes.extend_from_slice(b"GET / HTTP/1.1\r\n\r\n");
        let again = parse_request(&bytes, 4096).expect("well-formed").expect("complete");
        prop_assert_eq!(&again.body, &body);
    }

    /// Folded continuation lines join into the previous header's value
    /// with single spaces, regardless of how many folds and which
    /// whitespace leads them.
    #[test]
    fn header_folding_joins_values(
        parts in prop::collection::vec(prop::collection::vec(0usize..64, 1..6), 1..5),
        tabs in any::<bool>(),
    ) {
        let rendered: Vec<String> = parts
            .iter()
            .map(|p| {
                let v = value_from(p);
                if v.is_empty() { "v".to_string() } else { v }
            })
            .collect();
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        raw.push_str(&format!("X-Folded: {}\r\n", rendered[0]));
        for part in &rendered[1..] {
            raw.push_str(if tabs { "\t" } else { "  " });
            raw.push_str(part);
            raw.push_str("\r\n");
        }
        raw.push_str("\r\n");
        let req = parse_request(raw.as_bytes(), 4096).expect("parses").expect("complete");
        let joined = rendered.join(" ");
        prop_assert_eq!(req.header("x-folded"), Some(joined.as_str()));
    }

    /// A declared Content-Length over the bound fails with the typed
    /// 413 error from the head alone — before any body bytes arrive —
    /// and at or under the bound it parses once the body is complete.
    #[test]
    fn body_bound_is_enforced_from_the_header(
        declared in 0u64..10_000,
        max in 0usize..4096,
    ) {
        let head = format!("POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let parsed = parse_request(head.as_bytes(), max);
        if declared > max as u64 {
            prop_assert_eq!(
                parsed,
                Err(HttpParseError::BodyTooLarge { length: declared, max })
            );
        } else {
            // Head alone: need the body. With the body: complete.
            prop_assert_eq!(parsed, Ok(None));
            let mut bytes = head.into_bytes();
            bytes.extend(vec![b'x'; declared as usize]);
            let req = parse_request(&bytes, max).expect("parses").expect("complete");
            prop_assert_eq!(req.body.len() as u64, declared);
        }
    }

    /// Arbitrary garbage never panics: every outcome is a typed error
    /// or "need more bytes".
    #[test]
    fn garbage_is_typed_errors_not_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = parse_request(&bytes, 1024);
    }

    /// Malformed request lines are errors, not silent acceptance:
    /// lowercase methods, missing parts and relative targets all fail.
    #[test]
    fn malformed_request_lines_are_rejected(
        variant in 0u8..4,
        path_idx in prop::collection::vec(0usize..64, 0..8),
    ) {
        let path = path_from(&path_idx);
        let line = match variant {
            0 => format!("get {path} HTTP/1.1"),
            1 => format!("GET {path}"),
            2 => format!("GET {} HTTP/1.1", path.trim_start_matches('/')),
            _ => format!("GET {path} FTP/1.1"),
        };
        // Variant 2 with an empty tail would produce "GET  HTTP/1.1",
        // still malformed (empty target) — every variant must fail.
        let raw = format!("{line}\r\n\r\n");
        prop_assert_eq!(parse_request(raw.as_bytes(), 1024), Err(HttpParseError::BadRequestLine));
    }
}
