//! Property tests for the consistent-hash [`Ring`] behind `cfrouter`:
//! load stays within a bounded factor of the mean for any backend count
//! and key population, and removing one backend remaps *only* the keys
//! that lived on it — every other key keeps its assignment (the
//! minimal-disruption property that keeps surviving plan caches warm
//! through an ejection).

use cf_runtime::router::Ring;
use proptest::prelude::*;

/// Deterministic key stream: an LCG seeded per test case, so shrinking
/// stays reproducible without pulling `proptest` byte vectors of keys.
fn keys(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        })
        .collect()
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:81{i:02}")).collect()
}

proptest! {
    /// With the default 64 vnodes, no backend's share of a large key
    /// population strays past loose bounds around the mean: at most
    /// 2x the mean, at least a quarter of it. (Consistent hashing is
    /// not perfectly uniform; the bound is what the router relies on —
    /// no backend starved, none doubled-up beyond recovery.)
    #[test]
    fn load_imbalance_is_bounded(
        backends in 2usize..9,
        seed in any::<u64>(),
    ) {
        let names = names(backends);
        let ring = Ring::new(&names, 64);
        let population = 4096usize;
        let mut counts = vec![0usize; backends];
        for key in keys(seed, population) {
            counts[ring.primary(key).unwrap()] += 1;
        }
        let mean = population / backends;
        for (i, &count) in counts.iter().enumerate() {
            prop_assert!(
                count <= mean * 2,
                "backend {i} overloaded: {count} keys vs mean {mean}"
            );
            prop_assert!(
                count >= mean / 4,
                "backend {i} starved: {count} keys vs mean {mean}"
            );
        }
    }

    /// Removing one backend is minimally disruptive: every key that was
    /// NOT on the removed backend maps to the same surviving backend
    /// (compared by name — indices shift when the list shrinks).
    #[test]
    fn removing_a_backend_remaps_only_its_keys(
        backends in 2usize..9,
        removed in 0usize..9,
        seed in any::<u64>(),
    ) {
        let removed = removed % backends;
        let all = names(backends);
        let survivors: Vec<String> =
            all.iter().enumerate().filter(|&(i, _)| i != removed).map(|(_, n)| n.clone()).collect();
        let before = Ring::new(&all, 64);
        let after = Ring::new(&survivors, 64);
        let mut moved = 0usize;
        for key in keys(seed, 1024) {
            let owner_before = &all[before.primary(key).unwrap()];
            let owner_after = &survivors[after.primary(key).unwrap()];
            if owner_before == &all[removed] {
                moved += 1;
                prop_assert!(owner_after != &all[removed]);
            } else {
                prop_assert_eq!(
                    owner_before, owner_after,
                    "key {} moved off a surviving backend", key
                );
            }
        }
        // Sanity: the removed backend's keys exist and were remapped
        // (its expected share of 1024 keys is far above zero).
        prop_assert!(moved > 0, "removed backend owned no keys out of 1024");
    }

    /// Failover order ([`Ring::replicas`]) starts at the primary, never
    /// repeats a backend, and covers the whole fleet.
    #[test]
    fn replica_walk_is_a_permutation_starting_at_the_primary(
        backends in 1usize..9,
        key in any::<u64>(),
    ) {
        let names = names(backends);
        let ring = Ring::new(&names, 64);
        let replicas = ring.replicas(key);
        prop_assert_eq!(replicas.len(), backends);
        prop_assert_eq!(Some(replicas[0]), ring.primary(key));
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), backends);
    }
}
