//! Crash-recovery and overload integration tests: a serve run aborted
//! mid-flight by the crash drill resumes from its journal into a report
//! byte-identical to an uninterrupted run (with and without injected
//! faults); resume onto a different run is refused naming the mismatched
//! field; a torn journal tail is recovered, not fatal; and sustained
//! over-capacity submission sheds instead of blocking, with every shed
//! job retried to completion or surfaced in the failure summary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use cf_runtime::manifest::{self, JobKind, JobSpec};
use cf_runtime::serve::{
    render_record_json, serve_manifest, JournalOptions, ServeError, ServeOptions,
};
use cf_runtime::{
    CacheKey, FaultPlan, FaultSite, FaultSpec, JobError, JobOptions, JournalError, LoadPolicy,
    RetryPolicy, Runtime, RuntimeConfig,
};

/// The repo's example manifest (19 jobs), program paths made absolute so
/// the test is independent of the working directory.
fn manifest_text() -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/assets/serve.jobs");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.replace("program=assets/", &format!("program={root}/assets/"))
}

/// A fresh journal path, unique per process and call.
fn journal_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cf-recovery-{tag}-{}-{seq}.wal", std::process::id()))
}

fn rendered(report: &cf_runtime::ServeReport) -> Vec<String> {
    report.records.iter().map(render_record_json).collect()
}

/// Same seed search as the chaos test: at least one predicted panic and
/// repeated-key corruption, every job survivable within 4 retries.
fn chaos_seed(specs: &[JobSpec]) -> u64 {
    let mut repeated_key_tokens = Vec::new();
    let mut jobs = 0u64;
    for spec in specs {
        if spec.repeat >= 2 && spec.kind == JobKind::Simulate {
            let program =
                manifest::resolve_program(&spec.source).unwrap_or_else(|e| panic!("resolve: {e}"));
            let cfg = manifest::machine_by_name(&spec.machine)
                .unwrap_or_else(|| panic!("machine {}", spec.machine));
            let key = CacheKey::new(&cfg, &program);
            repeated_key_tokens.push(key.machine ^ key.program.rotate_left(32));
        }
        jobs += spec.repeat as u64;
    }
    for seed in 0..10_000u64 {
        let plan = FaultPlan::new(seed, FaultSpec::chaos());
        let panics = (0..jobs).any(|id| plan.fires(FaultSite::WorkerPanic, id, 0));
        let corrupts =
            repeated_key_tokens.iter().any(|&t| plan.fires(FaultSite::CacheCorrupt, t, 0));
        let survivable =
            (0..jobs).all(|id| (0..=4).any(|a| !plan.fires(FaultSite::WorkerPanic, id, a)));
        if panics && corrupts && survivable {
            return seed;
        }
    }
    panic!("no suitable chaos seed in 0..10000");
}

fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        total_deadline: None,
    }
}

/// Runs the crash drill at `abort_after` jobs, then resumes from the
/// journal and returns the merged report.
fn crash_then_resume(
    text: &str,
    base: &ServeOptions,
    path: &std::path::Path,
    abort_after: usize,
) -> cf_runtime::ServeReport {
    crash_then_resume_ct(text, base, path, abort_after, 0)
}

/// [`crash_then_resume`] with an explicit compaction threshold applied
/// to the resume leg (0 disables compaction).
fn crash_then_resume_ct(
    text: &str,
    base: &ServeOptions,
    path: &std::path::Path,
    abort_after: usize,
    compact_threshold: u64,
) -> cf_runtime::ServeReport {
    let crash_opts = ServeOptions {
        journal: Some(JournalOptions {
            path: path.to_path_buf(),
            resume: false,
            compact_threshold: 0,
        }),
        abort_after_jobs: Some(abort_after),
        ..base.clone()
    };
    match serve_manifest(text, &crash_opts) {
        Err(ServeError::Aborted { journaled }) => assert_eq!(journaled, abort_after),
        other => panic!("crash drill should abort, got {other:?}"),
    }

    let resume_opts = ServeOptions {
        journal: Some(JournalOptions { path: path.to_path_buf(), resume: true, compact_threshold }),
        ..base.clone()
    };
    serve_manifest(text, &resume_opts).unwrap_or_else(|e| panic!("resume: {e}"))
}

#[test]
fn crash_resume_merges_a_byte_identical_report() {
    let text = manifest_text();
    let base = ServeOptions { workers: 4, ..Default::default() };
    let clean = serve_manifest(&text, &base).unwrap_or_else(|e| panic!("clean: {e}"));
    assert_eq!(clean.failures(), 0);

    let path = journal_path("clean");
    let resumed = crash_then_resume(&text, &base, &path, 7);

    assert_eq!(resumed.stats.resumed_jobs, 7, "exactly the journaled prefix is skipped");
    assert_eq!(resumed.failures(), 0);
    assert!(resumed.stats.journal_bytes > 0);
    assert_eq!(rendered(&resumed), rendered(&clean), "resumed stdout must be byte-identical");
    std::fs::remove_file(&path).ok();
}

#[test]
fn crash_resume_is_byte_identical_under_fault_injection() {
    let text = manifest_text();
    let specs = manifest::parse_manifest(&text).unwrap_or_else(|e| panic!("parse: {e}"));
    let seed = chaos_seed(&specs);

    let clean = serve_manifest(&text, &ServeOptions { workers: 4, ..Default::default() })
        .unwrap_or_else(|e| panic!("clean: {e}"));
    let base = ServeOptions {
        workers: 4,
        retry: chaos_retry(),
        fault_plan: Some(FaultPlan::new(seed, FaultSpec::chaos())),
        ..Default::default()
    };
    let path = journal_path("chaos");
    let resumed = crash_then_resume(&text, &base, &path, 9);

    assert_eq!(resumed.stats.resumed_jobs, 9, "seed {seed}");
    assert_eq!(resumed.failures(), 0, "retries must mask faults in the resumed half (seed {seed})");
    assert_eq!(
        rendered(&resumed),
        rendered(&clean),
        "journal replay + fresh chaos runs must merge byte-identical (seed {seed})"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_onto_a_different_manifest_or_seed_is_refused() {
    let text = manifest_text();
    let base = ServeOptions { workers: 2, ..Default::default() };
    let path = journal_path("mismatch");
    let crash_opts = ServeOptions {
        journal: Some(JournalOptions { path: path.clone(), resume: false, compact_threshold: 0 }),
        abort_after_jobs: Some(3),
        ..base.clone()
    };
    assert!(matches!(serve_manifest(&text, &crash_opts), Err(ServeError::Aborted { .. })));

    // A manifest edit (one extra job) changes the run identity.
    let edited = format!("{text}workload=matmul order=64 label=extra\n");
    let resume = |manifest: &str, opts: &ServeOptions| {
        serve_manifest(
            manifest,
            &ServeOptions {
                journal: Some(JournalOptions {
                    path: path.clone(),
                    resume: true,
                    compact_threshold: 0,
                }),
                ..opts.clone()
            },
        )
    };
    match resume(&edited, &base) {
        Err(ServeError::Journal(e @ JournalError::Mismatch { field, .. })) => {
            assert_eq!(field, "manifest fingerprint");
            assert!(e.to_string().contains("manifest fingerprint"), "{e}");
        }
        other => panic!("expected manifest mismatch, got {other:?}"),
    }

    // Same manifest, different fault seed: also a different run.
    let seeded = ServeOptions {
        fault_plan: Some(FaultPlan::new(1234, FaultSpec::chaos())),
        retry: chaos_retry(),
        ..base.clone()
    };
    match resume(&text, &seeded) {
        Err(ServeError::Journal(JournalError::Mismatch { field, .. })) => {
            assert_eq!(field, "fault_seed");
        }
        other => panic!("expected fault_seed mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_journal_tail_is_recovered_not_fatal() {
    let text = manifest_text();
    let base = ServeOptions { workers: 2, ..Default::default() };
    let clean = serve_manifest(&text, &base).unwrap_or_else(|e| panic!("clean: {e}"));

    let path = journal_path("torn");
    let crash_opts = ServeOptions {
        journal: Some(JournalOptions { path: path.clone(), resume: false, compact_threshold: 0 }),
        abort_after_jobs: Some(5),
        ..base.clone()
    };
    assert!(matches!(serve_manifest(&text, &crash_opts), Err(ServeError::Aborted { .. })));

    // A torn final write: garbage with no trailing newline.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"crc\":\"0000deadbeef0000\",\"rec\":{\"type\":\"job\",\"ind").unwrap();
    }

    let resumed = serve_manifest(
        &text,
        &ServeOptions {
            journal: Some(JournalOptions {
                path: path.clone(),
                resume: true,
                compact_threshold: 0,
            }),
            ..base.clone()
        },
    )
    .unwrap_or_else(|e| panic!("resume after torn tail must succeed: {e}"));
    assert_eq!(resumed.stats.resumed_jobs, 5, "torn tail dropped, intact prefix replayed");
    assert_eq!(resumed.failures(), 0);
    assert_eq!(rendered(&resumed), rendered(&clean));
    std::fs::remove_file(&path).ok();
}

#[test]
fn overload_sheds_then_retries_every_job_to_completion() {
    let text = "workload=matmul order=64 repeat=8\n";
    let opts = ServeOptions {
        workers: 2,
        retry: RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            total_deadline: None,
        },
        load: LoadPolicy::max_in_flight(1),
        ..Default::default()
    };
    let report = serve_manifest(text, &opts).unwrap_or_else(|e| panic!("serve: {e}"));
    assert_eq!(report.records.len(), 8);
    assert_eq!(report.failures(), 0, "every shed submission must be retried to completion");
    assert!(
        report.stats.shed_jobs >= 1,
        "sustained over-capacity submission must shed (shed_jobs = {})",
        report.stats.shed_jobs
    );
}

#[test]
fn shed_error_carries_structured_queue_context() {
    // One byte of queue budget is below any job's cost, so admission
    // rejects deterministically regardless of worker timing.
    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        load: LoadPolicy { max_queued_bytes: 1, ..Default::default() },
        ..Default::default()
    });
    let program = manifest::resolve_program(
        &manifest::parse_manifest("workload=matmul order=64\n").unwrap()[0].source,
    )
    .unwrap();
    let machine = manifest::machine_by_name("f1").unwrap();
    let (handle, admitted) = runtime.submit_simulate_checked(
        JobOptions::default(),
        machine,
        std::sync::Arc::new(program),
    );
    match admitted {
        Err(JobError::Shed { limit, in_flight, queued_bytes }) => {
            assert_eq!(limit, "queued-bytes");
            assert_eq!(in_flight, 0);
            assert_eq!(queued_bytes, 0, "nothing was queued when the submission was rejected");
        }
        other => panic!("expected queued-bytes shed, got {other:?}"),
    }
    // The handle settles with the same error; a shed is transient (the
    // caller may retry), and the gauges never counted the rejected job.
    let err = handle.join().unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert_eq!(runtime.in_flight(), 0);
    assert_eq!(runtime.queued_bytes(), 0);
    assert_eq!(runtime.stats().snapshot().shed_jobs, 1);
    runtime.shutdown();
}

#[test]
fn terminal_shed_lands_in_the_failure_summary() {
    // Queue budget below one job's cost: every submission sheds, there is
    // never a pending job to settle, and the retry budget runs out — the
    // shed becomes the job's terminal outcome instead of a hang.
    let opts = ServeOptions {
        workers: 1,
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            total_deadline: None,
        },
        load: LoadPolicy { max_queued_bytes: 1, ..Default::default() },
        ..Default::default()
    };
    let report = serve_manifest("workload=matmul order=64 label=doomed\n", &opts)
        .unwrap_or_else(|e| panic!("serve must degrade gracefully, not error: {e}"));
    assert_eq!(report.failures(), 1);
    let record = &report.records[0];
    assert!(
        matches!(record.outcome, Err(JobError::Shed { limit: "queued-bytes", .. })),
        "{:?}",
        record.outcome
    );
    assert!(report.stats.shed_jobs >= 2, "initial try and the retry both shed");
    let line = render_record_json(record);
    assert!(line.contains("\"ok\":false") && line.contains("job shed"), "{line}");
}

#[test]
fn resume_onto_a_truncated_header_reports_the_byte_offset() {
    // A crash can tear the very first journal write: the file ends
    // mid-way through the run-identity header, before any newline.
    let text = "workload=matmul order=64 repeat=2\n";
    let path = journal_path("torn-header");
    let torn = b"{\"crc\":\"7d61aa00bb11cc22\",\"rec\":{\"type\":\"header\",\"vers";
    std::fs::write(&path, torn).unwrap();

    let opts = ServeOptions {
        workers: 1,
        journal: Some(JournalOptions { path: path.clone(), resume: true, compact_threshold: 0 }),
        ..Default::default()
    };
    match serve_manifest(text, &opts) {
        Err(ServeError::Journal(e @ JournalError::TruncatedHeader { offset, .. })) => {
            assert_eq!(offset, torn.len() as u64, "offset must be where the file ends");
            let msg = e.to_string();
            assert!(msg.contains("truncated run-identity header"), "{msg}");
            assert!(msg.contains(&format!("byte offset {}", torn.len())), "{msg}");
        }
        other => panic!("expected TruncatedHeader, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_compaction_is_byte_identical_and_counted() {
    let text = manifest_text();
    let base = ServeOptions { workers: 4, ..Default::default() };
    let clean = serve_manifest(&text, &base).unwrap_or_else(|e| panic!("clean: {e}"));

    // Threshold of 1 byte: any journaled prefix triggers compaction on
    // resume, and the live run keeps compacting whenever failed entries
    // leave reclaimable bytes behind.
    let path = journal_path("compact-clean");
    let resumed = crash_then_resume_ct(&text, &base, &path, 7, 1);

    assert_eq!(resumed.stats.resumed_jobs, 7);
    assert_eq!(resumed.failures(), 0);
    assert!(
        resumed.stats.journal_compactions >= 1,
        "resume past the threshold must compact (got {})",
        resumed.stats.journal_compactions
    );
    assert_eq!(rendered(&resumed), rendered(&clean), "compaction must not change the report");

    // The compacted file is still a valid journal: resuming again (all
    // jobs already journaled) replays every record byte-identically.
    let replayed = serve_manifest(
        &text,
        &ServeOptions {
            journal: Some(JournalOptions {
                path: path.clone(),
                resume: true,
                compact_threshold: 1,
            }),
            ..base.clone()
        },
    )
    .unwrap_or_else(|e| panic!("second resume: {e}"));
    assert_eq!(replayed.stats.resumed_jobs as usize, replayed.records.len());
    assert_eq!(rendered(&replayed), rendered(&clean));
    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_under_chaos_stays_byte_identical() {
    let text = manifest_text();
    let specs = manifest::parse_manifest(&text).unwrap_or_else(|e| panic!("parse: {e}"));
    let seed = chaos_seed(&specs);

    let clean = serve_manifest(&text, &ServeOptions { workers: 4, ..Default::default() })
        .unwrap_or_else(|e| panic!("clean: {e}"));
    let base = ServeOptions {
        workers: 4,
        retry: chaos_retry(),
        fault_plan: Some(FaultPlan::new(seed, FaultSpec::chaos())),
        ..Default::default()
    };
    let path = journal_path("compact-chaos");
    let resumed = crash_then_resume_ct(&text, &base, &path, 9, 1);

    assert_eq!(resumed.stats.resumed_jobs, 9, "seed {seed}");
    assert_eq!(resumed.failures(), 0, "seed {seed}");
    assert!(resumed.stats.journal_compactions >= 1, "seed {seed}");
    assert_eq!(
        rendered(&resumed),
        rendered(&clean),
        "compaction under injected faults must not change the merged report (seed {seed})"
    );
    std::fs::remove_file(&path).ok();
}
