//! Property tests for the network-chaos layer (`cf_runtime::netfault`)
//! and the end-to-end record digest (`cf_runtime::serve`):
//!
//! * the seeded wire-fault schedule is a pure function of
//!   `(seed, site, backend, fingerprint, attempt)` — so any
//!   interleaving of the same request multiset draws the same
//!   per-request fault decisions, which is what makes a chaos run
//!   reproducible at any concurrency;
//! * the record digest catches **every** single-byte flip in a rendered
//!   record's core, and survives the router's id rewrite.

use std::collections::HashMap;

use cf_runtime::netfault::{NetFaultPlan, NetFaultSite, NetFaultSpec};
use cf_runtime::serve::{render_record_json, verify_record_json, JobOutput, JobRecord};
use cf_runtime::JobError;
use proptest::prelude::*;

fn spec(rate: f64) -> NetFaultSpec {
    let mut spec = NetFaultSpec::none();
    spec.refuse_rate = rate;
    spec.tear_rate = rate;
    spec.garbage_rate = rate;
    spec.corrupt_rate = rate;
    spec.connect_latency_rate = rate;
    spec.trickle_rate = rate;
    spec
}

/// Replays a sequence of `(backend, fingerprint)` exchanges the way the
/// fault connector does — the n-th exchange of a pair draws decision n
/// — and records every decision made.
fn schedule(
    plan: &NetFaultPlan,
    exchanges: &[(u64, u64)],
) -> HashMap<(u64, u64, u32), Option<&'static str>> {
    let mut attempts: HashMap<(u64, u64), u32> = HashMap::new();
    let mut out = HashMap::new();
    for &(backend, fp) in exchanges {
        let slot = attempts.entry((backend, fp)).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        let decision = plan.decide(backend, fp, attempt).map(|f| {
            // Stable site label, so shrunk failures read well.
            match f {
                cf_runtime::NetFault::Refuse => "refuse",
                cf_runtime::NetFault::ConnectLatency(_) => "connect_latency",
                cf_runtime::NetFault::Trickle(_) => "trickle",
                cf_runtime::NetFault::Tear => "tear",
                cf_runtime::NetFault::Garbage => "garbage",
                cf_runtime::NetFault::Corrupt => "corrupt",
            }
        });
        out.insert((backend, fp, attempt), decision);
    }
    out
}

proptest! {
    /// Same seed ⇒ identical fault schedule regardless of request
    /// interleaving: shuffling the exchange order arbitrarily maps every
    /// `(backend, fingerprint, attempt)` point to the same decision.
    #[test]
    fn schedule_is_interleaving_independent(
        seed in any::<u64>(),
        rate in 0.05f64..0.5,
        pairs in proptest::collection::vec((0u64..4, 0u64..16), 1..64),
        shuffle_seed in any::<u64>(),
    ) {
        let plan = NetFaultPlan::new(seed, spec(rate));
        // A second interleaving: deterministic Fisher-Yates over the
        // same multiset of exchanges.
        let mut shuffled = pairs.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(schedule(&plan, &pairs), schedule(&plan, &shuffled));
    }

    /// Two plans with the same seed and spec agree on every decision
    /// point; a different seed diverges somewhere on a dense grid.
    #[test]
    fn same_seed_same_decisions(seed in any::<u64>(), rate in 0.05f64..0.95) {
        let a = NetFaultPlan::new(seed, spec(rate));
        let b = NetFaultPlan::new(seed, spec(rate));
        let c = NetFaultPlan::new(seed ^ 0x9E37_79B9, spec(rate));
        let mut diverged = false;
        for backend in 0..4u64 {
            for fp in 0..32u64 {
                for attempt in 0..2u32 {
                    for site in NetFaultSite::ALL {
                        let d = a.fires(site, backend, fp, attempt);
                        prop_assert_eq!(d, b.fires(site, backend, fp, attempt));
                        diverged |= d != c.fires(site, backend, fp, attempt);
                    }
                }
            }
        }
        prop_assert!(diverged, "seed change never altered any of 1536 decisions");
    }

    /// The rendered record round-trips through its digest, survives the
    /// router's id rewrite, and any single-byte flip in the core fails
    /// verification.
    #[test]
    fn record_digest_detects_every_single_byte_flip(
        index in 0usize..100_000,
        label_idx in prop::collection::vec(0usize..64, 0..24),
        ok in any::<bool>(),
        elems in 0usize..1_000_000,
        hash in any::<u64>(),
        new_id in 0u64..1_000_000,
    ) {
        // Labels drawn from an alphabet that includes JSON-hostile
        // characters, so the digest marker scan is exercised against
        // escaped quotes and backslashes inside values.
        const ALPHABET: &[u8; 64] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123_ \"\\-.:,";
        let label: String =
            label_idx.iter().map(|&i| ALPHABET[i] as char).collect();
        let record = JobRecord {
            index,
            label,
            machine: "f1".to_string(),
            mode: "exec",
            outcome: if ok {
                Ok(JobOutput::Exec { elems, memory_hash: hash })
            } else {
                Err(JobError::Panicked(format!("worker died ({hash:x})")))
            },
        };
        let line = render_record_json(&record);
        prop_assert!(verify_record_json(&line, Some(index as u64)), "{}", line);
        prop_assert!(!verify_record_json(&line, Some(index as u64 + 1)), "{}", line);
        // The router's edge rewrite keeps the digest valid.
        let rewritten = line.replacen(
            &format!("{{\"job\":{index},"),
            &format!("{{\"job\":{new_id},"),
            1,
        );
        prop_assert_eq!(verify_record_json(&rewritten, Some(new_id)), true);
        // Every single-byte flip of the core is caught.
        let core_start = line.find(',').unwrap_or(0) + 1;
        let core_end = line.rfind(",\"digest\":\"").unwrap_or(line.len());
        let bytes = line.as_bytes();
        for at in core_start..core_end {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 0x20;
            if mutated == bytes {
                continue;
            }
            let mutated = String::from_utf8_lossy(&mutated).to_string();
            prop_assert!(
                !verify_record_json(&mutated, Some(index as u64)),
                "flip at {} undetected: {}", at, mutated
            );
        }
    }
}
