//! Property tests for the serve journal: arbitrary records round-trip
//! through encode/parse exactly, any single-byte corruption is detected
//! by the checksum, and a torn final line is recovered by truncation —
//! never fatal, never silently replayed.

use std::sync::atomic::{AtomicUsize, Ordering};

use cf_runtime::journal::{
    compact_image, encode_record, parse_record, scan_valid_prefix, JobEntry, Journal, Record,
    RunHeader, JOURNAL_VERSION,
};
use cf_runtime::JobOutput;
use proptest::prelude::*;

/// Characters labels/machines/errors are built from: covers every escape
/// class the JSON string encoder handles (quote, backslash, control
/// chars, multi-byte UTF-8) plus plain ASCII.
const CHARS: &[char] =
    &['a', 'Z', '0', ' ', '_', '"', '\\', '\n', '\t', '\r', '\u{1}', 'é', '界', '/'];

fn string_from(indices: &[usize]) -> String {
    indices.iter().map(|&i| CHARS[i % CHARS.len()]).collect()
}

/// A fresh path in the target tmp dir, unique per process and call.
fn temp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cf-journal-{tag}-{}-{seq}.wal", std::process::id()))
}

fn header(jobs: u64) -> RunHeader {
    RunHeader {
        version: JOURNAL_VERSION,
        manifest: 0x1234_5678_9ABC_DEF0,
        machines: 0x0FED_CBA9_8765_4321,
        fault_seed: Some(7),
        fault_spec: 42,
        jobs,
    }
}

/// Builds an entry from proptest-generated raw parts: `outcome_sel`
/// picks sim / exec / failed.
#[allow(clippy::too_many_arguments)]
fn entry(
    index: u64,
    label_idx: &[usize],
    machine_idx: &[usize],
    exec_mode: bool,
    outcome_sel: u8,
    floats: (f64, f64, f64, f64, f64),
    elems: usize,
    hash: u64,
) -> JobEntry {
    let outcome = match outcome_sel % 3 {
        0 => Ok(JobOutput::Sim {
            makespan_s: floats.0,
            steady_s: floats.1,
            attained_tops: floats.2,
            peak_fraction: floats.3,
            root_intensity: floats.4,
        }),
        1 => Ok(JobOutput::Exec { elems, memory_hash: hash }),
        _ => Err(format!("job panicked: {}", string_from(label_idx))),
    };
    JobEntry {
        index,
        label: string_from(label_idx),
        machine: string_from(machine_idx),
        mode: if exec_mode { "exec" } else { "simulate" },
        outcome,
    }
}

proptest! {
    /// encode → parse is the identity for any job record, including
    /// labels exercising every JSON escape class and `{:?}`-formatted
    /// floats (which round-trip bit-exactly).
    #[test]
    fn job_records_round_trip(
        index in 0u64..1_000_000,
        label_idx in prop::collection::vec(0usize..CHARS.len(), 0..12),
        machine_idx in prop::collection::vec(0usize..CHARS.len(), 1..6),
        exec_mode in any::<bool>(),
        outcome_sel in 0u8..3,
        floats in (
            0.0f64..1e9, 1e-12f64..1.0, 0.0f64..1e3, 0.0f64..1.0, 0.0f64..1e6,
        ),
        elems in 0usize..1_000_000,
        hash in any::<u64>(),
    ) {
        let record = Record::Job(entry(
            index, &label_idx, &machine_idx, exec_mode, outcome_sel, floats, elems, hash,
        ));
        let line = encode_record(&record);
        prop_assert_eq!(parse_record(&line).unwrap(), record, "{}", line);
    }

    /// Header records round-trip too, with and without a fault seed.
    #[test]
    fn header_records_round_trip(
        version in 0u32..10,
        manifest in any::<u64>(),
        machines in any::<u64>(),
        seeded in any::<bool>(),
        seed in any::<u64>(),
        fault_spec in any::<u64>(),
        jobs in 0u64..100_000,
    ) {
        let record = Record::Header(RunHeader {
            version,
            manifest,
            machines,
            fault_seed: seeded.then_some(seed),
            fault_spec,
            jobs,
        });
        let line = encode_record(&record);
        prop_assert_eq!(parse_record(&line).unwrap(), record, "{}", line);
    }

    /// Flipping any single bit of any byte of an encoded line makes it
    /// unparseable — the checksum (or the strict framing) catches it.
    #[test]
    fn single_byte_corruption_is_detected(
        label_idx in prop::collection::vec(0usize..CHARS.len(), 0..10),
        outcome_sel in 0u8..3,
        byte_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let record = Record::Job(entry(
            7, &label_idx, &[0, 1], false, outcome_sel,
            (1.5, 0.25, 3.0, 0.5, 12.0), 64, 0xDEAD_BEEF,
        ));
        let line = encode_record(&record);
        let mut bytes = line.clone().into_bytes();
        let pos = byte_pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match String::from_utf8(bytes) {
            // Corruption that breaks UTF-8 can never reach the parser
            // from a journal scan (the line is rejected earlier).
            Err(_) => {}
            Ok(corrupt) => prop_assert!(
                parse_record(&corrupt).is_err(),
                "flip at {} bit {} parsed: {}", pos, bit, corrupt
            ),
        }
    }

    /// Truncating a journal image at any byte keeps the valid-prefix
    /// scan lossless: complete leading lines are all recovered, the torn
    /// tail is dropped, and re-scanning the recovered prefix is stable
    /// (truncation recovery is idempotent).
    #[test]
    fn torn_tail_truncation_recovers_the_valid_prefix(
        entries in prop::collection::vec(
            (prop::collection::vec(0usize..CHARS.len(), 0..8), 0u8..3),
            1..6,
        ),
        cut_sel in any::<usize>(),
    ) {
        let jobs = entries.len() as u64;
        let mut image = encode_record(&Record::Header(header(jobs))).into_bytes();
        image.push(b'\n');
        let mut line_ends = vec![image.len()];
        for (i, (label_idx, sel)) in entries.iter().enumerate() {
            let e = entry(
                i as u64, label_idx, &[2, 3], *sel == 1, *sel,
                (0.5, 0.25, 1.0, 0.75, 2.0), 16, i as u64,
            );
            image.extend_from_slice(encode_record(&Record::Job(e)).as_bytes());
            image.push(b'\n');
            line_ends.push(image.len());
        }
        let cut = cut_sel % (image.len() + 1);
        let torn = &image[..cut];
        let (records, valid_len) = scan_valid_prefix(torn, jobs);
        // The valid prefix is exactly the complete lines before the cut.
        let expected_lines = line_ends.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(records.len(), expected_lines);
        prop_assert_eq!(valid_len as usize, line_ends.get(expected_lines.wrapping_sub(1)).copied().unwrap_or(0));
        // Idempotent: scanning the recovered prefix changes nothing.
        let (again, len_again) = scan_valid_prefix(&torn[..valid_len as usize], jobs);
        prop_assert_eq!(again.len(), records.len());
        prop_assert_eq!(len_again, valid_len);
    }

    /// Compacting a journal image never changes what a resume replays:
    /// the successful entries (the merged report's journaled half) come
    /// out of the compacted image identical and in order, failed entries
    /// are dropped for a fresh retry, and compaction is idempotent.
    #[test]
    fn compaction_replays_the_same_merged_outcomes(
        entries in prop::collection::vec(
            (prop::collection::vec(0usize..CHARS.len(), 0..8), 0u8..3),
            1..10,
        ),
    ) {
        let jobs = entries.len() as u64;
        let mut image = encode_record(&Record::Header(header(jobs))).into_bytes();
        image.push(b'\n');
        for (i, (label_idx, sel)) in entries.iter().enumerate() {
            let e = entry(
                i as u64, label_idx, &[2, 3], *sel == 1, *sel,
                (0.5, 0.25, 1.0, 0.75, 2.0), 16, i as u64,
            );
            image.extend_from_slice(encode_record(&Record::Job(e)).as_bytes());
            image.push(b'\n');
        }

        let (original, _) = scan_valid_prefix(&image, jobs);
        let ok_entries: Vec<&Record> = original[1..]
            .iter()
            .filter(|r| matches!(r, Record::Job(j) if j.outcome.is_ok()))
            .collect();
        let failed = original.len() - 1 - ok_entries.len();

        let (compacted, stats) = compact_image(&image, jobs);
        prop_assert_eq!(stats.dropped as usize, failed);
        prop_assert_eq!(stats.bytes_before as usize, image.len());
        prop_assert_eq!(stats.bytes_after as usize, compacted.len());
        prop_assert!(compacted.len() <= image.len());

        // The compacted image replays to exactly the successful entries.
        let (replayed, valid_len) = scan_valid_prefix(&compacted, jobs);
        prop_assert_eq!(valid_len as usize, compacted.len(), "compacted image must be fully valid");
        prop_assert!(matches!(replayed[0], Record::Header(_)));
        let replayed_jobs: Vec<&Record> = replayed[1..].iter().collect();
        prop_assert_eq!(replayed_jobs, ok_entries);

        // Idempotent: compacting a compacted image is the identity.
        let (twice, stats2) = compact_image(&compacted, jobs);
        prop_assert_eq!(twice, compacted);
        prop_assert_eq!(stats2.dropped, 0);
    }
}

/// End-to-end torn-tail recovery through the real file path: append
/// garbage + a partial record to a journal on disk, resume, and observe
/// the file truncated back to its valid prefix with all entries intact.
#[test]
fn resume_truncates_torn_tail_on_disk() {
    let path = temp_path("torn");
    let h = header(3);
    let mut journal = Journal::create(&path, &h).unwrap();
    for i in 0..2u64 {
        journal
            .append(&entry(i, &[0, 1, 2], &[3], false, 0, (1.0, 0.5, 2.0, 0.25, 8.0), 0, 0))
            .unwrap();
    }
    drop(journal);
    let clean_len = std::fs::metadata(&path).unwrap().len();

    // A crash mid-append leaves a partial record: simulate one.
    let full = encode_record(&Record::Job(entry(
        2,
        &[4],
        &[3],
        false,
        0,
        (1.0, 0.5, 2.0, 0.25, 8.0),
        0,
        0,
    )));
    let torn = &full[..full.len() / 2];
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(torn.as_bytes()).unwrap();
    }

    let (journal, recovery) = Journal::resume(&path, &h).unwrap();
    assert_eq!(recovery.entries.len(), 2);
    assert_eq!(recovery.truncated_bytes, torn.len() as u64);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
    drop(journal);
    std::fs::remove_file(&path).ok();
}
