//! Property tests for the resilience layer: the retry schedule never
//! exceeds its budget or total deadline, and the circuit breaker's state
//! machine matches its specification under arbitrary event sequences.

use std::time::{Duration, Instant};

use cf_runtime::{next_retry, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use proptest::prelude::*;

proptest! {
    /// Driving `next_retry` to exhaustion accepts at most `max_retries`
    /// retries, every backoff respects `max_backoff`, and the cumulative
    /// schedule never crosses `total_deadline`.
    #[test]
    fn retry_schedule_respects_budget_and_deadline(
        max_retries in 0u32..8,
        base_ms in 1u64..25,
        max_ms in 25u64..250,
        deadline_ms in 0u64..500,
        jitter in 0.0f64..1.0,
    ) {
        let policy = RetryPolicy {
            max_retries,
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(max_ms),
            total_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        };
        let mut elapsed = Duration::ZERO;
        let mut retries = 0u32;
        let mut failures = 1u32;
        while let Some(backoff) = next_retry(&policy, failures, elapsed, jitter) {
            prop_assert!(backoff <= policy.max_backoff,
                "backoff {backoff:?} exceeds max {:?}", policy.max_backoff);
            elapsed += backoff;
            if let Some(deadline) = policy.total_deadline {
                prop_assert!(elapsed <= deadline,
                    "schedule {elapsed:?} crossed deadline {deadline:?}");
            }
            retries += 1;
            failures += 1;
            prop_assert!(retries <= max_retries, "{retries} retries > budget {max_retries}");
        }
        prop_assert!(retries <= max_retries);
    }

    /// Jittered backoffs stay within `[½·nominal, nominal]` of the
    /// unjittered schedule.
    #[test]
    fn jitter_only_shrinks_backoff(
        failures in 1u32..12,
        base_ms in 1u64..25,
        jitter in 0.0f64..1.0,
    ) {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(base_ms),
            ..RetryPolicy::retries(12)
        };
        let nominal = policy.backoff(failures, 1.0);
        let jittered = policy.backoff(failures, jitter);
        prop_assert!(jittered <= nominal);
        // Allow a rounding nanosecond on the lower bound.
        prop_assert!(jittered + Duration::from_nanos(1) >= nominal / 2,
            "{jittered:?} below half of {nominal:?}");
    }

    /// The breaker tracks a reference model of its own specification —
    /// Closed counts consecutive failures, threshold opens it, the open
    /// interval sheds, the first post-interval caller probes half-open,
    /// a failed probe re-opens for a fresh interval, success closes.
    #[test]
    fn breaker_matches_reference_model(
        threshold in 1u32..5,
        events in prop::collection::vec((0u64..300, 0u32..3), 1..60),
    ) {
        #[derive(Clone, Copy, PartialEq, Debug)]
        enum Model {
            Closed { fails: u32 },
            Open { until_ms: u64 },
            HalfOpen,
        }
        let open_for = Duration::from_millis(100);
        let breaker = CircuitBreaker::new(BreakerConfig { failure_threshold: threshold, open_for });
        let t0 = Instant::now();
        let mut model = Model::Closed { fails: 0 };
        let mut now_ms = 0u64;
        for (advance, action) in events {
            now_ms += advance;
            let now = t0 + Duration::from_millis(now_ms);
            match action {
                // allow_at
                0 => {
                    let expected = match model {
                        Model::Closed { .. } => true,
                        Model::HalfOpen => false,
                        Model::Open { until_ms } => {
                            if now_ms >= until_ms {
                                model = Model::HalfOpen;
                                true
                            } else {
                                false
                            }
                        }
                    };
                    prop_assert_eq!(breaker.allow_at(now), expected, "at {}ms", now_ms);
                }
                // record_success
                1 => {
                    breaker.record_success();
                    model = Model::Closed { fails: 0 };
                }
                // record_failure_at
                _ => {
                    breaker.record_failure_at(now);
                    model = match model {
                        Model::HalfOpen => Model::Open { until_ms: now_ms + 100 },
                        Model::Closed { fails } if fails + 1 >= threshold => {
                            Model::Open { until_ms: now_ms + 100 }
                        }
                        Model::Closed { fails } => Model::Closed { fails: fails + 1 },
                        // An open breaker keeps counting (the scheduler
                        // only records terminal outcomes of admitted
                        // jobs, but the API tolerates it): count ≥
                        // threshold, so it re-opens afresh.
                        Model::Open { .. } => Model::Open { until_ms: now_ms + 100 },
                    };
                }
            }
            let expected_state = match model {
                Model::Closed { .. } => BreakerState::Closed,
                Model::Open { .. } => BreakerState::Open,
                Model::HalfOpen => BreakerState::HalfOpen,
            };
            prop_assert_eq!(breaker.state(), expected_state, "at {}ms", now_ms);
        }
    }
}
