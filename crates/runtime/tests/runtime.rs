//! Integration tests for the cf-runtime service: cache identity,
//! concurrent-vs-sequential determinism, deadlines, cancellation,
//! shutdown semantics and queue bounds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cf_core::{Machine, MachineConfig};
use cf_isa::Program;
use cf_runtime::{JobError, JobOptions, Runtime, RuntimeConfig};
use cf_workloads::nets;

fn small_runtime(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig {
        workers,
        queue_capacity: 64,
        cache_capacity: 32,
        ..Default::default()
    })
}

/// The repeated-workload mix the acceptance criterion exercises: a few
/// distinct programs, each submitted several times.
fn workload_mix() -> Vec<(MachineConfig, Arc<Program>)> {
    let programs = [
        Arc::new(nets::matmul_program(96)),
        Arc::new(nets::matmul_program(128)),
        Arc::new(nets::build_program(&nets::mlp3(), 1).unwrap()),
    ];
    let machines = [MachineConfig::cambricon_f1(), MachineConfig::cambricon_f100()];
    let mut jobs = Vec::new();
    for round in 0..3 {
        for (i, p) in programs.iter().enumerate() {
            let m = machines[(round + i) % machines.len()].clone();
            jobs.push((m, Arc::clone(p)));
        }
    }
    jobs
}

#[test]
fn cache_hit_report_identical_to_cold_run() {
    let rt = small_runtime(1);
    let program = Arc::new(nets::matmul_program(128));
    let cfg = MachineConfig::cambricon_f1();

    let direct = Machine::new(cfg.clone()).simulate(&program).unwrap();

    let cold = rt.submit_simulate(cfg.clone(), Arc::clone(&program)).join().unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(*cold.report, direct);

    let warm = rt.submit_simulate(cfg, program).join().unwrap();
    assert!(warm.cache_hit);
    // Not just equal: the very same report object the cold run cached.
    assert!(Arc::ptr_eq(&warm.report, &cold.report));
    assert_eq!(*warm.report, direct);

    let snap = rt.stats().snapshot();
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.cache_misses, 1);
}

#[test]
fn bypass_cache_skips_lookup_and_fill() {
    let rt = small_runtime(1);
    let program = Arc::new(nets::matmul_program(64));
    let cfg = MachineConfig::cambricon_f1();
    let opts = JobOptions { bypass_cache: true, ..Default::default() };

    let a = rt.submit_simulate_opts(opts, cfg.clone(), Arc::clone(&program)).join().unwrap();
    let b = rt.submit_simulate_opts(opts, cfg, program).join().unwrap();
    assert!(!a.cache_hit && !b.cache_hit);
    assert_eq!(a.report, b.report);
    assert!(rt.cache().is_empty());
    assert_eq!(rt.stats().snapshot().cache_misses, 0);
}

#[test]
fn cold_simulation_populates_cold_counters_and_stays_identical() {
    // A multi-op program so the parallel cold path has a frontier to fan
    // out; 4 workers so Machine::simulate_parallel gets a thread budget.
    let rt = small_runtime(4);
    let program = Arc::new(nets::build_program(&nets::mlp3(), 1).unwrap());
    let cfg = MachineConfig::cambricon_f1();

    let direct = Machine::new(cfg.clone()).simulate(&program).unwrap();
    let cold = rt.submit_simulate(cfg, Arc::clone(&program)).join().unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(*cold.report, direct, "parallel cold path must match sequential");

    let snap = rt.stats().snapshot();
    assert!(snap.cold_memo_misses > 0, "planner must have computed splits");
    assert!(snap.cold_memo_hits > 0, "self-similar siblings must hit the shape memo");
    assert!(snap.cold_arena_bytes > 0, "arena high-water must be recorded");
    let json = snap.render_json();
    assert!(json.contains("\"cold_memo_hits\":"), "{json}");
    assert!(json.contains("\"cold_parallel_tasks\":"), "{json}");
}

#[test]
fn concurrent_simulation_matches_sequential_byte_for_byte() {
    let jobs = workload_mix();

    // Sequential reference, no runtime involved.
    let sequential: Vec<String> = jobs
        .iter()
        .map(|(m, p)| format!("{:?}", Machine::new(m.clone()).simulate(p).unwrap()))
        .collect();

    // Concurrent, submitted all at once to a 4-worker pool.
    let rt = small_runtime(4);
    let handles = rt.simulate_batch(jobs);
    let concurrent: Vec<String> =
        handles.into_iter().map(|h| format!("{:?}", *h.join().unwrap().report)).collect();

    assert_eq!(sequential, concurrent);
}

#[test]
fn concurrent_exec_matches_sequential_memory() {
    let cfg = MachineConfig::tiny(2, 2, 64 << 10);
    let program = Arc::new(nets::matmul_program(32));

    let rt = small_runtime(4);
    let handles: Vec<_> =
        (0..4).map(|seed| rt.submit_exec(cfg.clone(), Arc::clone(&program), seed)).collect();
    let concurrent: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap().memory).collect();

    // Same seed twice gives bit-identical memory; different seeds differ.
    let again = rt.submit_exec(cfg, Arc::clone(&program), 0).join().unwrap().memory;
    assert_eq!(concurrent[0], again);
    assert_ne!(concurrent[0], concurrent[1]);
}

#[test]
fn deadline_expires_queued_job() {
    // One worker, blocked by a slow job; the deadlined job behind it
    // cannot start in time.
    let rt = small_runtime(1);
    let _slow = rt.submit_task(|| std::thread::sleep(Duration::from_millis(120)));
    let opts = JobOptions::with_deadline(Duration::from_millis(10));
    let late = rt.submit_task_opts(opts, || 42u32);
    match late.join() {
        Err(JobError::DeadlineExceeded { late_by }) => {
            assert!(late_by > Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(rt.stats().snapshot().expired, 1);
}

#[test]
fn cancel_resolves_queued_job_without_running_it() {
    let rt = small_runtime(1);
    let ran = Arc::new(AtomicUsize::new(0));
    let _slow = rt.submit_task(|| std::thread::sleep(Duration::from_millis(100)));
    let ran2 = Arc::clone(&ran);
    let victim = rt.submit_task(move || ran2.fetch_add(1, Ordering::SeqCst));
    victim.cancel();
    assert!(victim.is_cancelled());
    assert_eq!(victim.join(), Err(JobError::Cancelled));
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    assert_eq!(rt.stats().snapshot().cancelled, 1);
}

#[test]
fn graceful_shutdown_drains_queue() {
    let rt = small_runtime(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let log = Arc::clone(&log);
            rt.submit_task(move || {
                std::thread::sleep(Duration::from_millis(5));
                log.lock().unwrap().push(i);
                i
            })
        })
        .collect();
    rt.shutdown();
    assert_eq!(log.lock().unwrap().len(), 10);
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i);
    }
}

#[test]
fn shutdown_now_discards_queued_jobs() {
    let rt = small_runtime(1);
    let _slow = rt.submit_task(|| std::thread::sleep(Duration::from_millis(80)));
    let queued: Vec<_> = (0..5).map(|i| rt.submit_task(move || i)).collect();
    rt.shutdown_now();
    let mut discarded = 0;
    for h in queued {
        if h.join() == Err(JobError::Shutdown) {
            discarded += 1;
        }
    }
    // The worker may have started at most one of them before the close.
    assert!(discarded >= 4, "only {discarded} jobs were discarded");
}

#[test]
fn submit_after_shutdown_resolves_to_shutdown_error() {
    // Drop runs the graceful shutdown path; a clone of nothing remains,
    // so exercise close-then-submit through a second handle scope.
    let rt = small_runtime(1);
    let h = rt.submit_task(|| 1u8);
    assert_eq!(h.join().unwrap(), 1);
    rt.shutdown();
    // `rt` is consumed by shutdown; nothing left to submit on — the
    // closed-queue path is covered by shutdown_now_discards_queued_jobs
    // and by try_submit below.
}

#[test]
fn bounded_queue_rejects_when_full() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 0,
        ..Default::default()
    });
    // Fill the worker and the queue.
    let _running = rt.submit_task(|| std::thread::sleep(Duration::from_millis(150)));
    std::thread::sleep(Duration::from_millis(20)); // let the worker take it
    let _q1 = rt.submit_task(|| std::thread::sleep(Duration::from_millis(1)));
    let _q2 = rt.submit_task(|| std::thread::sleep(Duration::from_millis(1)));
    match rt.try_submit_task(|| 0u8) {
        Err(JobError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
}

#[test]
fn panicking_job_reports_panicked_error() {
    let rt = small_runtime(1);
    let h = rt.submit_task(|| -> u32 { panic!("kernel exploded") });
    match h.join() {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("kernel exploded")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The pool survives a panicking job.
    assert_eq!(rt.submit_task(|| 7u32).join().unwrap(), 7);
    assert_eq!(rt.stats().snapshot().failed, 1);
}

#[test]
fn warm_cache_answers_repeated_mix_without_resimulating() {
    let jobs = workload_mix();
    let distinct = 6; // 3 programs × 2 machines in the mix
    let rt = small_runtime(2);
    let handles = rt.simulate_batch(jobs.clone());
    for h in handles {
        h.join().unwrap();
    }
    let snap = rt.stats().snapshot();
    assert_eq!(snap.cache_hits + snap.cache_misses, jobs.len() as u64);
    // Single-flight coalescing: concurrent same-key jobs wait for the
    // leader's fill instead of duplicating the planner run, so the miss
    // count is exactly the number of distinct (machine, program) pairs.
    assert_eq!(snap.cache_misses, distinct, "misses {}", snap.cache_misses);
    assert_eq!(snap.cache_hits, jobs.len() as u64 - distinct);
}
