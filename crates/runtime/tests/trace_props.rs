//! Property tests for the distributed-trace wire format
//! (`cf_runtime::trace`): the `X-CF-Trace` header encode/parse
//! round-trips exactly for every valid context, parsing is
//! case-insensitive on input while encoding stays lowercase, child
//! contexts chain correctly, malformed headers are rejected (never
//! panicking, never half-parsing), and the `X-CF-Attribution`
//! component list survives its own encode/parse round-trip.

use cf_runtime::trace::{Attribution, TraceContext};
use proptest::prelude::*;

/// A nonzero `u128` trace id assembled from two `u64` halves (the
/// compat `proptest` has no `u128` `Arbitrary`).
fn trace_id(hi: u64, lo: u64) -> u128 {
    (((hi as u128) << 64) | lo as u128) | 1
}

proptest! {
    /// encode → parse is the identity for every valid context, with
    /// and without a parent span.
    #[test]
    fn header_round_trips(
        hi in any::<u64>(),
        lo in any::<u64>(),
        span in any::<u64>(),
        parent in any::<u64>(),
        with_parent in any::<bool>(),
    ) {
        let ctx = TraceContext {
            trace_id: trace_id(hi, lo),
            span_id: span | 1,
            parent: if with_parent { Some(parent | 1) } else { None },
        };
        let encoded = ctx.encode();
        let parsed = TraceContext::parse(&encoded);
        prop_assert_eq!(parsed, Ok(ctx), "header {}", encoded);
        // The wire form is lowercase hex, but parsing accepts either
        // case — a proxy uppercasing headers must not break the chain.
        prop_assert_eq!(&encoded, &encoded.to_ascii_lowercase());
        prop_assert_eq!(TraceContext::parse(&encoded.to_ascii_uppercase()), Ok(ctx));
    }

    /// `child()` stays in the same trace, parents to the caller's span,
    /// and never mints a zero span id — and the child's header also
    /// round-trips.
    #[test]
    fn child_contexts_chain(
        hi in any::<u64>(),
        lo in any::<u64>(),
        span in any::<u64>(),
    ) {
        let root = TraceContext {
            trace_id: trace_id(hi, lo),
            span_id: span | 1,
            parent: None,
        };
        let child = root.child();
        prop_assert_eq!(child.trace_id, root.trace_id);
        prop_assert_eq!(child.parent, Some(root.span_id));
        prop_assert!(child.span_id != 0);
        prop_assert_eq!(TraceContext::parse(&child.encode()), Ok(child));
    }

    /// Malformed headers never panic and never parse: wrong segment
    /// counts, oversized fields, zero ids, and non-hex bytes are all
    /// rejected.
    #[test]
    fn malformed_headers_are_rejected(
        hi in any::<u64>(),
        lo in any::<u64>(),
        span in any::<u64>(),
        junk in proptest::collection::vec(any::<u8>(), 0..48usize),
    ) {
        let t = trace_id(hi, lo);
        let s = span | 1;
        // `{:Nx}` width is a minimum, not a truncation — shift the
        // value down so the short forms really are short.
        let mut nonhex = format!("{t:032x}-{s:016x}");
        nonhex.replace_range(0..1, "g");
        let bad = [
            String::new(),
            format!("{t:032x}"),                          // span missing
            format!("{t:032x}-{s:016x}-{s:016x}-{s:016x}"), // too many parts
            format!("{:031x}-{s:016x}", t >> 4),          // short trace id
            format!("0{t:032x}-{s:016x}"),                // long trace id
            format!("{t:032x}-{:015x}", s >> 4),          // short span id
            format!("{t:032x}-0{s:016x}"),                // long span id
            format!("{:032x}-{s:016x}", 0u128),           // zero trace id
            format!("{t:032x}-{:016x}", 0u64),            // zero span id
            format!("{t:032x}-{s:016x}-{:016x}", 0u64),   // zero parent
            nonhex,                                       // non-hex byte
        ];
        for input in &bad {
            prop_assert!(
                TraceContext::parse(input).is_err(),
                "accepted malformed header {:?}", input
            );
        }
        // Arbitrary bytes (lossily stringified) must never panic; any
        // accepted parse must re-encode to a canonical header that
        // parses back to the same context.
        let wild = String::from_utf8_lossy(&junk).to_string();
        if let Ok(ctx) = TraceContext::parse(&wild) {
            prop_assert_eq!(TraceContext::parse(&ctx.encode()), Ok(ctx));
        }
    }

    /// The attribution component list round-trips through its header
    /// form: names and values survive in order.
    #[test]
    fn attribution_round_trips(
        values in proptest::collection::vec(any::<u64>(), 1..6usize),
    ) {
        let mut attr = Attribution::new();
        for (i, &v) in values.iter().enumerate() {
            attr.push(&format!("part{i}_us"), v);
        }
        let encoded = attr.encode();
        let parsed = Attribution::parse(&encoded).expect("canonical form parses");
        let before: Vec<(String, u64)> =
            attr.iter().map(|(k, v)| (k.to_string(), v)).collect();
        let after: Vec<(String, u64)> =
            parsed.iter().map(|(k, v)| (k.to_string(), v)).collect();
        prop_assert_eq!(before, after, "header {}", encoded);
    }
}
