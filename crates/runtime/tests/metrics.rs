//! Integration test for the Prometheus `/metrics` endpoint: a real
//! serve run (the repo's 19-job manifest, two jobs profiled) publishes
//! into an [`Obs`] hub behind a live [`StatusServer`], and every fetch
//! — idle, mid-run and final — must pass a strict test-side exposition
//! parser: `# HELP`/`# TYPE` before any sample of a family, no
//! duplicate series, an `instance` label everywhere, and cumulative
//! histogram buckets closed by `+Inf` that agree with `_count`.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_runtime::obs::Obs;
use cf_runtime::serve::{serve_manifest, ServeOptions};
use cf_runtime::status::StatusServer;

/// The repo's example manifest (19 jobs), program paths made absolute
/// and two of the simulate lines switched to `profile=true` so the
/// profile aggregate families gain samples.
fn manifest_text() -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/assets/serve.jobs");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.replace("program=assets/", &format!("program={root}/assets/"))
        .replace("workload=knn size=small machine=f1 repeat=2", {
            "workload=knn size=small machine=f1 repeat=2 profile=true"
        })
        .replace(
            "machine=tiny label=demo repeat=2",
            "machine=tiny label=demo repeat=2 profile=true",
        )
}

/// One blocking HTTP GET; returns `(status_line, headers, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    let status = head.lines().next().unwrap_or("").to_string();
    (status, head.to_string(), body.to_string())
}

/// One parsed sample line.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

/// Parses `key="value",…` with the exposition escapes (`\\`, `\"`,
/// `\n`).
fn parse_labels(text: &str, line: &str) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    let mut chars = text.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        assert!(!key.is_empty(), "empty label name in {line:?}");
        assert_eq!(chars.next(), Some('"'), "label value must be quoted in {line:?}");
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("bad escape {other:?} in {line:?}"),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        assert!(labels.insert(key, value).is_none(), "duplicate label name in {line:?}");
        match chars.next() {
            Some(',') => continue,
            None => break,
            other => panic!("expected ',' or end after label, got {other:?} in {line:?}"),
        }
    }
    labels
}

fn parse_sample(line: &str) -> Sample {
    let (name_and_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line has no value: {line:?}");
    });
    let (name, labels) = match name_and_labels.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or_else(|| {
                panic!("unterminated label set: {line:?}");
            });
            (name.to_string(), parse_labels(body, line))
        }
        None => (name_and_labels.to_string(), BTreeMap::new()),
    };
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name in {line:?}"
    );
    let value: f64 = value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    Sample { name, labels, value }
}

/// The family a sample belongs to: histogram samples drop their
/// `_bucket`/`_sum`/`_count` suffix when the base name is typed.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Strictly validates one exposition body; panics on any violation and
/// returns every sample for content assertions.
fn validate_exposition(body: &str, instance: &str) -> Vec<Sample> {
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut series: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP has a name");
            assert!(helps.insert(name.to_string()), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_whitespace();
            let name = words.next().expect("TYPE has a name");
            let kind = words.next().expect("TYPE has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind} for {name}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line: {line:?}");
        let sample = parse_sample(line);
        let family = family_of(&sample.name, &types);
        assert!(types.contains_key(family), "sample {} has no # TYPE", sample.name);
        assert!(helps.contains(family), "sample {} has no # HELP", sample.name);
        if types[family] == "counter" {
            assert!(family.ends_with("_total"), "counter {family} must end in _total");
            assert!(sample.value >= 0.0, "negative counter {}", sample.name);
        }
        assert_eq!(
            sample.labels.get("instance").map(String::as_str),
            Some(instance),
            "sample {} lacks the instance label",
            sample.name
        );
        let key = format!("{}{:?}", sample.name, sample.labels);
        assert!(series.insert(key), "duplicate series: {line:?}");
        samples.push(sample);
    }
    // Histogram coherence: per bucket series (labels minus `le`) the
    // cumulative counts are non-decreasing over increasing `le`, the
    // last bucket is `+Inf`, and it equals the matching `_count`.
    let mut bucket_rows: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for s in samples.iter().filter(|s| s.name.ends_with("_bucket")) {
        let le = s.labels.get("le").expect("bucket sample has le");
        let le = if le == "+Inf" { f64::INFINITY } else { le.parse().expect("le parses") };
        let mut rest = s.labels.clone();
        rest.remove("le");
        bucket_rows.entry(format!("{}{rest:?}", s.name)).or_default().push((le, s.value));
    }
    for (row, buckets) in &bucket_rows {
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{row}: le not increasing");
            assert!(pair[0].1 <= pair[1].1, "{row}: bucket counts not cumulative");
        }
        let (last_le, last_count) = *buckets.last().expect("non-empty row");
        assert!(last_le.is_infinite(), "{row}: last bucket must be +Inf");
        let count_name = row.split('{').next().unwrap().replace("_bucket", "_count");
        let count = samples
            .iter()
            .find(|s| {
                s.name == count_name && {
                    let mut rest = s.labels.clone();
                    rest.remove("le");
                    row.ends_with(&format!("{rest:?}"))
                }
            })
            .unwrap_or_else(|| panic!("{row}: no matching _count"));
        assert_eq!(count.value, last_count, "{row}: +Inf bucket != _count");
    }
    samples
}

fn value_of(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> Option<f64> {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && label.is_none_or(|(k, v)| s.labels.get(k).map(String::as_str) == Some(v))
        })
        .map(|s| s.value)
}

#[test]
fn metrics_endpoint_serves_a_valid_exposition_over_a_live_run() {
    let obs = Obs::new(4096);
    obs.set_instance("metrics-it");
    let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
    let addr = server.local_addr();

    // Idle: /metrics is already a valid exposition (families with no
    // samples yet, spans_dropped always present) with the right
    // content type.
    let (status, head, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    let samples = validate_exposition(&body, "metrics-it");
    assert_eq!(value_of(&samples, "cf_spans_dropped_total", None), Some(0.0), "{body}");
    assert!(value_of(&samples, "cf_jobs_submitted_total", None).is_none(), "{body}");

    let text = manifest_text();
    let opts = ServeOptions { workers: 2, obs: Some(Arc::clone(&obs)), ..Default::default() };
    let handle = std::thread::spawn(move || serve_manifest(&text, &opts));

    // Mid-run: every poll must already be a valid exposition; stop once
    // the submission counter moves.
    let t0 = Instant::now();
    loop {
        let (status, _, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        let samples = validate_exposition(&body, "metrics-it");
        if value_of(&samples, "cf_jobs_submitted_total", None).unwrap_or(0.0) > 0.0 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "counters never moved");
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.records.len(), 19);
    assert_eq!(report.failures(), 0);

    // Final: every RuntimeStats counter family has its sample, the two
    // profiled manifest lines fed the per-machine profile series, and
    // the stage histograms are coherent (validated above).
    let (status, _, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let samples = validate_exposition(&body, "metrics-it");
    assert_eq!(value_of(&samples, "cf_jobs_submitted_total", None), Some(19.0), "{body}");
    assert_eq!(value_of(&samples, "cf_jobs_completed_total", None), Some(19.0), "{body}");
    for family in [
        "cf_jobs_failed_total",
        "cf_cache_hits_total",
        "cf_cache_misses_total",
        "cf_retries_total",
        "cf_shed_jobs_total",
        "cf_journal_bytes_total",
        "cf_faults_injected_total",
        "cf_queue_wait_seconds_total",
        "cf_spans_dropped_total",
        "cf_in_flight",
        "cf_uptime_seconds",
    ] {
        assert!(value_of(&samples, family, None).is_some(), "missing {family}: {body}");
    }
    assert!(value_of(&samples, "cf_worker_jobs_total", Some(("worker", "0"))).is_some(), "{body}");
    // knn ran twice profiled on f1, demo twice on tiny.
    assert_eq!(
        value_of(&samples, "cf_profile_jobs_total", Some(("machine", "f1"))),
        Some(2.0),
        "{body}"
    );
    assert_eq!(
        value_of(&samples, "cf_profile_jobs_total", Some(("machine", "tiny"))),
        Some(2.0),
        "{body}"
    );
    let stage_rows = samples
        .iter()
        .filter(|s| s.name == "cf_profile_stage_seconds_total")
        .filter(|s| s.labels.contains_key("level") && s.labels.contains_key("stage"))
        .count();
    assert!(stage_rows > 0, "no per-stage profile attribution rows: {body}");
    assert!(
        samples.iter().any(|s| s.name == "cf_stage_latency_seconds_bucket"),
        "no latency histogram buckets: {body}"
    );

    server.shutdown();
}
