//! Integration tests for the observability layer end to end: a real
//! serve run publishes into an [`Obs`] hub behind a live [`StatusServer`]
//! on an ephemeral port, and plain TCP HTTP GETs observe `/healthz`
//! readiness, `/stats` counters moving, `/trace` spans, and the
//! overload flip to 503 when [`LoadPolicy`] headroom is exhausted.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_runtime::obs::Obs;
use cf_runtime::serve::{serve_manifest, ServeOptions};
use cf_runtime::status::StatusServer;
use cf_runtime::{LoadPolicy, Runtime, RuntimeConfig};

/// The repo's example manifest (19 jobs), program paths made absolute.
fn manifest_text() -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/assets/serve.jobs");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.replace("program=assets/", &format!("program={root}/assets/"))
}

/// One blocking HTTP GET; returns `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap_or((response.as_str(), ""));
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// Polls `path` until `want(status_line, body)` holds or the deadline
/// passes; returns the last `(status_line, body)` seen.
fn poll(
    addr: SocketAddr,
    path: &str,
    want: impl Fn(&str, &str) -> bool,
    deadline: Duration,
) -> (String, String) {
    let t0 = Instant::now();
    loop {
        let (status, body) = http_get(addr, path);
        if want(&status, &body) || t0.elapsed() > deadline {
            return (status, body);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Extracts `"key":<u64>` from a flat JSON object.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[test]
fn stats_counters_move_over_a_real_serve_run() {
    let obs = Obs::new(4096);
    let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
    let addr = server.local_addr();

    // Before the run: the server is up, permissive, and /stats is 503.
    let (status, body) = poll(addr, "/healthz", |s, _| s.contains("200"), Duration::from_secs(5));
    assert!(status.contains("200"), "{status} {body}");
    let (status, _) = http_get(addr, "/stats");
    assert!(status.contains("503"), "stats must be 503 before a run publishes: {status}");

    let text = manifest_text();
    let opts = ServeOptions { workers: 2, obs: Some(Arc::clone(&obs)), ..Default::default() };
    let handle = std::thread::spawn(move || serve_manifest(&text, &opts));

    // The serve engine publishes as soon as its pool exists: /stats
    // flips to 200 and its counters start moving.
    let (status, body) =
        poll(addr, "/stats", |s, b| s.contains("200") && json_u64(b, "submitted") > Some(0), {
            Duration::from_secs(30)
        });
    assert!(status.contains("200"), "{status} {body}");
    assert!(json_u64(&body, "submitted") > Some(0), "{body}");

    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.records.len(), 19);
    assert_eq!(report.failures(), 0);

    // After the run the hub still serves the final counters.
    let (status, body) = http_get(addr, "/stats");
    assert!(status.contains("200"), "{status}");
    assert_eq!(json_u64(&body, "submitted"), Some(19), "{body}");
    assert_eq!(json_u64(&body, "completed"), Some(19), "{body}");

    // The tracer saw the run: /trace has submit/settle spans.
    let (status, body) = http_get(addr, "/trace");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("job-submit") && body.contains("job-settle"), "{body}");
    assert!(body.contains("\"histograms\""), "{body}");

    server.shutdown();
}

#[test]
fn healthz_flips_to_overloaded_when_headroom_is_exhausted() {
    let obs = Obs::new(64);
    let server = StatusServer::bind(0, Arc::clone(&obs)).unwrap();
    let addr = server.local_addr();

    // A 1-slot pool whose only slot is held by a job we control.
    let runtime = Runtime::new(RuntimeConfig {
        workers: 1,
        load: LoadPolicy::max_in_flight(1),
        ..Default::default()
    });
    obs.publish(runtime.stats_arc(), runtime.load_policy());

    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "idle pool must be healthy: {status} {body}");
    assert!(body.contains("\"headroom\":1"), "{body}");

    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handle = runtime.submit_task(move || {
        started_tx.send(()).ok();
        release_rx.recv().ok();
        42u32
    });
    started_rx.recv_timeout(Duration::from_secs(10)).unwrap();

    // The slot is taken: headroom 0, /healthz 503 "overloaded".
    let (status, body) = poll(addr, "/healthz", |s, _| s.contains("503"), Duration::from_secs(10));
    assert!(status.contains("503"), "{status} {body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(body.contains("\"headroom\":0"), "{body}");

    // Releasing the job restores health.
    release_tx.send(()).unwrap();
    assert_eq!(handle.join().unwrap(), 42);
    let (status, body) = poll(addr, "/healthz", |s, _| s.contains("200"), Duration::from_secs(10));
    assert!(status.contains("200"), "{status} {body}");

    runtime.shutdown();
    server.shutdown();
}
