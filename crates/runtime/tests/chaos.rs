//! Chaos test: the example service manifest (`assets/serve.jobs`, 19
//! jobs) runs under a seeded fault plan injecting worker panics and
//! cache corruption, and must produce **byte-identical** stdout records
//! to the fault-free run with every job succeeding — retries mask the
//! panics, checksum verification masks the corruption.

use std::sync::Mutex;
use std::time::Duration;

use cf_runtime::manifest::{self, JobKind, JobSpec};

/// Serializes the two tests: each runs multiple 4-worker serve runs,
/// and overlapping them on a small machine can starve a repeated job's
/// first instance long enough that the repeat no longer hits the cache
/// — changing which fault decisions get drawn at all.
static SERIAL: Mutex<()> = Mutex::new(());
use cf_runtime::serve::{render_record_json, serve_manifest, ServeOptions};
use cf_runtime::{CacheKey, FaultPlan, FaultSite, FaultSpec, RetryPolicy};

/// The repo's example manifest, program paths made absolute so the test
/// is independent of the working directory.
fn manifest_text() -> String {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/assets/serve.jobs");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.replace("program=assets/", &format!("program={root}/assets/"))
}

/// Deterministically finds a seed whose fault plan (10 % panics, 5 %
/// cache corruption) is *predicted* to inject at least one worker panic
/// and corrupt at least one repeated cache key, while leaving every job
/// able to succeed within a 4-retry budget. The prediction uses the same
/// pure `fires` decisions the runtime consults, so the run must match it.
fn chaos_seed(specs: &[JobSpec]) -> (u64, u64) {
    let mut repeated_key_tokens = Vec::new();
    let mut jobs = 0u64;
    for spec in specs {
        if spec.repeat >= 2 && spec.kind == JobKind::Simulate {
            let program =
                manifest::resolve_program(&spec.source).unwrap_or_else(|e| panic!("resolve: {e}"));
            let cfg = manifest::machine_by_name(&spec.machine)
                .unwrap_or_else(|| panic!("machine {}", spec.machine));
            let key = CacheKey::new(&cfg, &program);
            // The token the scheduler keys cache-corruption decisions on.
            repeated_key_tokens.push(key.machine ^ key.program.rotate_left(32));
        }
        jobs += spec.repeat as u64;
    }
    assert!(!repeated_key_tokens.is_empty(), "manifest has no repeated simulate specs");
    for seed in 0..10_000u64 {
        let plan = FaultPlan::new(seed, FaultSpec::chaos());
        let panics = (0..jobs).any(|id| plan.fires(FaultSite::WorkerPanic, id, 0));
        let corrupts =
            repeated_key_tokens.iter().any(|&t| plan.fires(FaultSite::CacheCorrupt, t, 0));
        let survivable =
            (0..jobs).all(|id| (0..=4).any(|a| !plan.fires(FaultSite::WorkerPanic, id, a)));
        if panics && corrupts && survivable {
            return (seed, jobs);
        }
    }
    panic!("no suitable chaos seed in 0..10000");
}

#[test]
fn chaos_run_is_byte_identical_to_fault_free_run() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let text = manifest_text();
    let specs = manifest::parse_manifest(&text).unwrap_or_else(|e| panic!("parse: {e}"));
    let (seed, jobs) = chaos_seed(&specs);
    assert_eq!(jobs, 19, "assets/serve.jobs should expand to 19 jobs");

    let clean_opts = ServeOptions { workers: 4, ..Default::default() };
    let chaos_opts = ServeOptions {
        workers: 4,
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            total_deadline: None,
        },
        fault_plan: Some(FaultPlan::new(seed, FaultSpec::chaos())),
        ..Default::default()
    };

    let clean = serve_manifest(&text, &clean_opts).unwrap_or_else(|e| panic!("clean run: {e}"));
    let chaos = serve_manifest(&text, &chaos_opts).unwrap_or_else(|e| panic!("chaos run: {e}"));

    assert_eq!(clean.records.len() as u64, jobs);
    assert_eq!(clean.failures(), 0, "fault-free run must succeed");
    assert_eq!(chaos.failures(), 0, "every chaos job must succeed after retries");

    let clean_out: Vec<String> = clean.records.iter().map(render_record_json).collect();
    let chaos_out: Vec<String> = chaos.records.iter().map(render_record_json).collect();
    assert_eq!(clean_out, chaos_out, "chaos stdout must be byte-identical (seed {seed})");

    // The faults really happened and were masked, not skipped.
    assert_eq!(clean.stats.faults_injected, 0);
    assert!(chaos.stats.faults_injected >= 1, "no faults injected (seed {seed})");
    assert!(chaos.stats.retries >= 1, "no retries recorded (seed {seed})");
    assert!(chaos.stats.cache_corruptions >= 1, "no corruption detected (seed {seed})");
}

#[test]
fn chaos_run_reproduces_exactly_with_same_seed() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let text = manifest_text();
    let specs = manifest::parse_manifest(&text).unwrap_or_else(|e| panic!("parse: {e}"));
    let (seed, _) = chaos_seed(&specs);
    let opts = |workers| ServeOptions {
        workers,
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            total_deadline: None,
        },
        fault_plan: Some(FaultPlan::new(seed, FaultSpec::chaos())),
        ..Default::default()
    };
    // Same seed, different worker counts: decisions are keyed on stable
    // tokens, never thread identity, so the fault mix is identical.
    let a = serve_manifest(&text, &opts(4)).unwrap_or_else(|e| panic!("run a: {e}"));
    let b = serve_manifest(&text, &opts(1)).unwrap_or_else(|e| panic!("run b: {e}"));
    let ra: Vec<String> = a.records.iter().map(render_record_json).collect();
    let rb: Vec<String> = b.records.iter().map(render_record_json).collect();
    assert_eq!(ra, rb);
    assert_eq!(a.stats.faults_injected, b.stats.faults_injected);
    assert_eq!(a.stats.cache_corruptions, b.stats.cache_corruptions);
}
