//! The fractal-operation property (paper eq. 1), property-tested: for any
//! primitive, any decomposition axis and any piece count,
//! decompose-and-execute must equal direct execution.

use cf_isa::{ConvParams, Instruction, OpParams, Opcode, PoolParams};
use cf_ops::exec::execute_instruction;
use cf_ops::fractal::{apply_split, split_axes, ReduceKind, SplitOutcome};
use cf_ops::kernels;
use cf_tensor::{gen::DataGen, Memory, Region, Shape};
use proptest::prelude::*;

fn reg(offset: u64, dims: &[usize]) -> Region {
    Region::contiguous(offset, Shape::new(dims.to_vec()))
}

/// Executes `inst` via a `parts`-way split along `axis`, materialising
/// partials past the end of the memory, and compares against direct
/// execution. (Same harness as the unit tests, generalised for proptest.)
fn check_axis(inst: &Instruction, mem: &Memory, axis: usize, parts: usize, tol: f32) {
    let mut direct = mem.clone();
    execute_instruction(inst, &mut direct).unwrap();
    let mut fractal = mem.clone();
    match apply_split(inst, axis, parts).unwrap() {
        SplitOutcome::Direct(pieces) => {
            for p in &pieces {
                execute_instruction(p, &mut fractal).unwrap();
            }
        }
        SplitOutcome::Reduce { pieces, kind } => {
            let mut scratch = fractal.len() as u64;
            let mut insts = Vec::new();
            let mut regions_all = Vec::new();
            for piece in &pieces {
                let regions: Vec<Region> = piece
                    .partial_shapes
                    .iter()
                    .map(|s| {
                        let r = Region::contiguous(scratch, s.clone());
                        scratch += s.numel();
                        r
                    })
                    .collect();
                regions_all.push(regions.clone());
                insts.push(piece.clone().into_instruction(regions).unwrap());
            }
            let mut grown = Memory::new(scratch as usize);
            grown.as_mut_slice()[..fractal.len()].copy_from_slice(fractal.as_slice());
            for p in &insts {
                execute_instruction(p, &mut grown).unwrap();
            }
            match kind {
                ReduceKind::Add | ReduceKind::Mul => {
                    let mut acc = grown.read_region(&regions_all[0][0]).unwrap();
                    for regions in &regions_all[1..] {
                        let t = grown.read_region(&regions[0]).unwrap();
                        acc = if kind == ReduceKind::Add {
                            kernels::eltwise_add(&acc, &t).unwrap()
                        } else {
                            kernels::eltwise_mul(&acc, &t).unwrap()
                        };
                    }
                    let acc = acc.reshape(inst.outputs[0].shape().clone()).unwrap();
                    grown.write_region(&inst.outputs[0], &acc).unwrap();
                }
                ReduceKind::Merge => {
                    let with_payload = regions_all[0].len() == 2;
                    let mut keys = grown.read_region(&regions_all[0][0]).unwrap();
                    let mut pay =
                        with_payload.then(|| grown.read_region(&regions_all[0][1]).unwrap());
                    for regions in &regions_all[1..] {
                        let k2 = grown.read_region(&regions[0]).unwrap();
                        let p2 = with_payload.then(|| grown.read_region(&regions[1]).unwrap());
                        let (k, p) = kernels::merge(&keys, &k2, pay.as_ref(), p2.as_ref()).unwrap();
                        keys = k;
                        pay = p;
                    }
                    grown.write_region(&inst.outputs[0], &keys).unwrap();
                    if let Some(pay) = pay {
                        grown.write_region(&inst.outputs[1], &pay).unwrap();
                    }
                }
            }
            let n = fractal.len();
            fractal.as_mut_slice().copy_from_slice(&grown.as_slice()[..n]);
        }
    }
    for out in &inst.outputs {
        let a = direct.read_region(out).unwrap();
        let b = fractal.read_region(out).unwrap();
        assert!(
            a.approx_eq(&b, tol),
            "axis {axis} x{parts} of {} diverged by {:?}",
            inst.op,
            a.max_abs_diff(&b)
        );
    }
}

fn filled(n: usize, seed: u64) -> Memory {
    let mut mem = Memory::new(n);
    let t = DataGen::new(seed).uniform(Shape::new(vec![n]), -1.5, 1.5);
    mem.as_mut_slice().copy_from_slice(t.data());
    mem
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn matmul_every_axis(
        m in 1usize..14, k in 1usize..14, n in 1usize..14,
        parts in 2usize..5, seed in 0u64..1000,
    ) {
        let inst = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[m, k]), reg((m * k) as u64, &[k, n])],
            vec![reg((m * k + k * n) as u64, &[m, n])],
        ).unwrap();
        let mem = filled(m * k + k * n + m * n, seed);
        for axis in split_axes(&inst) {
            if axis.extent >= 2 {
                check_axis(&inst, &mem, axis.index, parts, 1e-3);
            }
        }
    }

    #[test]
    fn conv2d_every_axis(
        nb in 1usize..3, hw in 3usize..8, ci in 1usize..4, co in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
        parts in 2usize..4, seed in 0u64..1000,
    ) {
        let padded = hw + 2 * pad;
        prop_assume!(padded >= 3);
        let ho = (padded - 3) / stride + 1;
        let x = reg(0, &[nb, hw, hw, ci]);
        let w = reg(x.numel(), &[3, 3, ci, co]);
        let o = reg(x.numel() + w.numel(), &[nb, ho, ho, co]);
        let total = (x.numel() + w.numel() + o.numel()) as usize;
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(ConvParams::same(stride, pad)),
            vec![x, w],
            vec![o],
        ).unwrap();
        let mem = filled(total, seed);
        for axis in split_axes(&inst) {
            if axis.extent >= 2 {
                check_axis(&inst, &mem, axis.index, parts, 1e-3);
            }
        }
    }

    #[test]
    fn pooling_every_axis(
        nb in 1usize..3, hw in 4usize..10, c in 1usize..4,
        k in 2usize..4, parts in 2usize..4, seed in 0u64..1000, mode in 0usize..3,
    ) {
        prop_assume!(hw >= k);
        let op = [Opcode::Max2D, Opcode::Min2D, Opcode::Avg2D][mode];
        let ho = (hw - k) / k + 1;
        let x = reg(0, &[nb, hw, hw, c]);
        let o = reg(x.numel(), &[nb, ho, ho, c]);
        let total = (x.numel() + o.numel()) as usize;
        let inst = Instruction::new(
            op,
            OpParams::Pool(PoolParams::square(k, k, 0)),
            vec![x],
            vec![o],
        ).unwrap();
        let mem = filled(total, seed);
        for axis in split_axes(&inst) {
            if axis.extent >= 2 {
                check_axis(&inst, &mem, axis.index, parts, 1e-4);
            }
        }
    }

    #[test]
    fn sort_and_reductions_every_axis(
        n in 2usize..120, parts in 2usize..6, seed in 0u64..1000,
    ) {
        for op in [Opcode::Sort1D, Opcode::Count1D, Opcode::HSum1D] {
            let outs = match op {
                Opcode::Sort1D => vec![reg(n as u64, &[n])],
                _ => vec![reg(n as u64, &[1])],
            };
            let inst =
                Instruction::new(op, OpParams::None, vec![reg(0, &[n])], outs).unwrap();
            let mem = filled(2 * n + 1, seed);
            for axis in split_axes(&inst) {
                if axis.extent >= 2 {
                    check_axis(&inst, &mem, axis.index, parts, 1e-3);
                }
            }
        }
    }

    #[test]
    fn euclidean_every_axis(
        n in 1usize..10, m in 1usize..10, d in 1usize..10,
        parts in 2usize..4, seed in 0u64..1000,
    ) {
        let x = reg(0, &[n, d]);
        let y = reg(x.numel(), &[m, d]);
        let o = reg(x.numel() + y.numel(), &[n, m]);
        let total = (x.numel() + y.numel() + o.numel()) as usize;
        let inst =
            Instruction::new(Opcode::Euclidian1D, OpParams::None, vec![x, y], vec![o])
                .unwrap();
        let mem = filled(total, seed);
        for axis in split_axes(&inst) {
            if axis.extent >= 2 {
                check_axis(&inst, &mem, axis.index, parts, 1e-3);
            }
        }
    }
}
