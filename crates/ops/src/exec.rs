//! Flat (non-fractal) instruction execution over a single [`Memory`].
//!
//! This is both the functional model of a *leaf accelerator* — which
//! "finishes the most part of the computation" (paper §3.1) — and the
//! reference executor that the fractal machine's results are compared
//! against in tests.

use cf_isa::{Instruction, Opcode, Program};
use cf_tensor::{Memory, Tensor};

use crate::{kernels, OpsError};

/// Executes one instruction directly: gather inputs, run the reference
/// kernel, scatter outputs.
///
/// # Errors
///
/// Propagates region/shape errors and kernel-dispatch errors.
pub fn execute_instruction(inst: &Instruction, mem: &mut Memory) -> Result<(), OpsError> {
    let inputs: Vec<Tensor> =
        inst.inputs.iter().map(|r| mem.read_region(r)).collect::<Result<_, _>>()?;
    let outputs = evaluate(inst, &inputs)?;
    debug_assert_eq!(outputs.len(), inst.outputs.len());
    for (region, tensor) in inst.outputs.iter().zip(&outputs) {
        mem.write_region(region, tensor)?;
    }
    Ok(())
}

/// Pure evaluation of an instruction on already-gathered input tensors.
///
/// # Errors
///
/// Returns kernel shape errors; arity is assumed validated by
/// [`Instruction::new`].
pub fn evaluate(inst: &Instruction, inputs: &[Tensor]) -> Result<Vec<Tensor>, OpsError> {
    Ok(match inst.op {
        Opcode::Cv2D => vec![kernels::conv2d(&inputs[0], &inputs[1], &inst.params.conv())?],
        Opcode::Cv3D => vec![kernels::conv3d(&inputs[0], &inputs[1], &inst.params.conv())?],
        Opcode::Max2D => {
            vec![kernels::pool2d(&inputs[0], &inst.params.pool(), kernels::PoolMode::Max)?]
        }
        Opcode::Min2D => {
            vec![kernels::pool2d(&inputs[0], &inst.params.pool(), kernels::PoolMode::Min)?]
        }
        Opcode::Avg2D => {
            vec![kernels::pool2d(&inputs[0], &inst.params.pool(), kernels::PoolMode::Avg)?]
        }
        Opcode::Lrn => vec![kernels::lrn(&inputs[0], &inst.params.lrn())?],
        Opcode::MatMul => vec![kernels::matmul(&inputs[0], &inputs[1])?],
        Opcode::Euclidian1D => vec![kernels::euclidean_sq(&inputs[0], &inputs[1])?],
        Opcode::Sort1D => {
            let (k, p) = kernels::sort(&inputs[0], inputs.get(1))?;
            match p {
                Some(p) => vec![k, p],
                None => vec![k],
            }
        }
        Opcode::Merge1D => {
            let (k, p) = kernels::merge(&inputs[0], &inputs[1], inputs.get(2), inputs.get(3))?;
            match p {
                Some(p) => vec![k, p],
                None => vec![k],
            }
        }
        Opcode::Count1D => vec![kernels::count(&inputs[0], &inst.params.count())],
        Opcode::Add1D => vec![kernels::eltwise_add(&inputs[0], &inputs[1])?],
        Opcode::Sub1D => vec![kernels::eltwise_sub(&inputs[0], &inputs[1])?],
        Opcode::Mul1D => vec![kernels::eltwise_mul(&inputs[0], &inputs[1])?],
        Opcode::Act1D => vec![kernels::activate(&inputs[0], inst.params.act())],
        Opcode::HSum1D => vec![kernels::hsum(&inputs[0])],
        Opcode::HProd1D => vec![kernels::hprod(&inputs[0])],
    })
}

/// Executes a whole program in order on `mem` (which must be at least
/// [`Program::extern_elems`] long).
///
/// # Errors
///
/// Stops at and returns the first failing instruction's error.
pub fn execute_program(program: &Program, mem: &mut Memory) -> Result<(), OpsError> {
    for inst in program.instructions() {
        execute_instruction(inst, mem)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{OpParams, ProgramBuilder};
    use cf_tensor::Shape;

    #[test]
    fn run_small_program() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![4]);
        let y = b.alloc("y", vec![4]);
        let z = b.alloc("z", vec![4]);
        let s = b.alloc("s", vec![1]);
        b.emit(Opcode::Add1D, [x, y], [z]).unwrap();
        b.emit(Opcode::HSum1D, [z], [s]).unwrap();
        let p = b.build();

        let mut mem = Memory::new(p.extern_elems() as usize);
        mem.write_contiguous(0, &Tensor::from_vec(Shape::new(vec![4]), vec![1., 2., 3., 4.]))
            .unwrap();
        mem.write_contiguous(4, &Tensor::from_vec(Shape::new(vec![4]), vec![10., 20., 30., 40.]))
            .unwrap();
        execute_program(&p, &mut mem).unwrap();
        assert_eq!(&mem.as_slice()[8..12], &[11., 22., 33., 44.]);
        assert_eq!(mem.as_slice()[12], 110.0);
    }

    #[test]
    fn sort_instruction_with_payload() {
        let mut b = ProgramBuilder::new();
        let k = b.alloc("k", vec![4]);
        let v = b.alloc("v", vec![4]);
        let ks = b.alloc("ks", vec![4]);
        let vs = b.alloc("vs", vec![4]);
        b.emit(Opcode::Sort1D, [k, v], [ks, vs]).unwrap();
        let p = b.build();
        let mut mem = Memory::new(p.extern_elems() as usize);
        mem.write_contiguous(0, &Tensor::from_vec(Shape::new(vec![4]), vec![4., 1., 3., 2.]))
            .unwrap();
        mem.write_contiguous(4, &Tensor::from_vec(Shape::new(vec![4]), vec![40., 10., 30., 20.]))
            .unwrap();
        execute_program(&p, &mut mem).unwrap();
        assert_eq!(&mem.as_slice()[8..12], &[1., 2., 3., 4.]);
        assert_eq!(&mem.as_slice()[12..16], &[10., 20., 30., 40.]);
    }

    #[test]
    fn evaluate_matches_kernels() {
        let inst = Instruction::new(
            Opcode::Act1D,
            OpParams::None,
            vec![cf_tensor::Region::contiguous(0, Shape::new(vec![2]))],
            vec![cf_tensor::Region::contiguous(2, Shape::new(vec![2]))],
        )
        .unwrap();
        let out =
            evaluate(&inst, &[Tensor::from_vec(Shape::new(vec![2]), vec![-2.0, 2.0])]).unwrap();
        assert_eq!(out[0].data(), &[0.0, 2.0]);
    }
}
