//! Reference kernels, fractal decomposition rules and cost model for every
//! FISA primitive.
//!
//! Three layers:
//!
//! * [`kernels`] — plain-Rust reference implementations of the seventeen
//!   FISA operations. These are the ground truth the fractal machine is
//!   validated against, and they double as the leaf-accelerator functional
//!   model.
//! * [`fractal`] — the paper's §2 theory made executable: which axes each
//!   primitive can be decomposed along, the dependency class of each axis
//!   (*independent*, *input dependent*, *output dependent*), the retrieving
//!   operator `g(·)` and the data redundancy (Table 2), plus the region
//!   arithmetic that actually performs a split.
//! * [`cost`] — operation/byte counts per instruction, used by the leaf
//!   timing model, the decomposition chooser and the Table 1 profiler.
//!
//! # Examples
//!
//! Decompose-and-execute equals direct execution (the fractal-operation
//! property, eq. (1) of the paper):
//!
//! ```
//! use cf_isa::{Instruction, Opcode, OpParams};
//! use cf_ops::fractal::{apply_split, SplitOutcome};
//! use cf_tensor::{Region, Shape};
//!
//! let inst = Instruction::new(
//!     Opcode::Add1D,
//!     OpParams::None,
//!     vec![Region::contiguous(0, Shape::new(vec![64])), Region::contiguous(64, Shape::new(vec![64]))],
//!     vec![Region::contiguous(128, Shape::new(vec![64]))],
//! )?;
//! let axes = cf_ops::fractal::split_axes(&inst);
//! match apply_split(&inst, axes[0].index, 2)? {
//!     SplitOutcome::Direct(parts) => assert_eq!(parts.len(), 2),
//!     _ => unreachable!("elementwise splits are independent"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod error;

pub mod cost;
pub mod exec;
pub mod fractal;
pub mod kernels;

pub use error::OpsError;
