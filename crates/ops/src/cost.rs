//! Operation and traffic counts per instruction.
//!
//! Three quantities drive the whole performance methodology:
//!
//! * [`flops`] — scalar arithmetic operations (multiply-accumulate counted
//!   as 2), the numerator of operational intensity and of Table 1's
//!   primitive-time decomposition;
//! * [`mac_ops`] — the subset of work that runs on a leaf core's MAC
//!   matrix (the paper's 16×16 MAC array);
//! * [`io_bytes`] — operand traffic, the denominator of operational
//!   intensity.

use cf_isa::{Instruction, Opcode};
use cf_tensor::Region;

/// Scalar arithmetic operations performed by the instruction
/// (multiply+accumulate = 2 ops; comparisons count as 1).
pub fn flops(inst: &Instruction) -> u64 {
    let in0 = || inst.inputs[0].shape();
    match inst.op {
        Opcode::Cv2D | Opcode::Cv3D => {
            let w = inst.inputs[1].shape();
            let out = inst.outputs[0].shape();
            // For every output element: Kd·Kh·Kw·Ci MACs.
            let window: u64 = w.dims()[..w.rank() - 1].iter().map(|&d| d as u64).product();
            2 * out.numel() * window
        }
        Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D => {
            let p = inst.params.pool();
            inst.outputs[0].shape().numel() * (p.kh * p.kw) as u64
        }
        Opcode::Lrn => {
            let p = inst.params.lrn();
            // Per element: `size` squares+adds, plus divide and power (~4).
            in0().numel() * (2 * p.size as u64 + 4)
        }
        Opcode::MatMul => {
            let a = inst.inputs[0].shape();
            let b = inst.inputs[1].shape();
            2 * a.dim(0) as u64 * a.dim(1) as u64 * b.dim(1) as u64
        }
        Opcode::Euclidian1D => {
            let x = inst.inputs[0].shape();
            let y = inst.inputs[1].shape();
            // sub, square(mul), add per dimension pair ≈ 3 ops, but the MAC
            // formulation (‖x‖²+‖y‖²−2x·y) is 2 ops: count 2 like MatMul.
            2 * x.dim(0) as u64 * x.dim(1) as u64 * y.dim(0) as u64
        }
        Opcode::Sort1D => {
            let n = in0().numel();
            n * n.max(2).ilog2() as u64
        }
        Opcode::Merge1D => inst.inputs[0].shape().numel() + inst.inputs[1].shape().numel(),
        Opcode::Count1D => in0().numel(),
        Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D => in0().numel(),
        // Transcendental activations are a handful of ops each.
        Opcode::Act1D => in0().numel() * 2,
        Opcode::HSum1D | Opcode::HProd1D => in0().numel(),
    }
}

/// Work executed on a leaf core's MAC matrix (everything expressible as
/// dense multiply-accumulate). Non-MAC primitives return 0 and run on the
/// core's vector/scalar path instead.
pub fn mac_ops(inst: &Instruction) -> u64 {
    match inst.op {
        Opcode::Cv2D | Opcode::Cv3D | Opcode::MatMul | Opcode::Euclidian1D => flops(inst),
        _ => 0,
    }
}

/// Bytes read and written by the instruction: `(input, output)`.
pub fn io_bytes(inst: &Instruction) -> (u64, u64) {
    let i = inst.inputs.iter().map(Region::bytes).sum();
    let o = inst.outputs.iter().map(Region::bytes).sum();
    (i, o)
}

/// Operational intensity of the instruction in flops per byte of operand
/// traffic — the x-axis of the roofline model (Figure 15).
pub fn operational_intensity(inst: &Instruction) -> f64 {
    let (i, o) = io_bytes(inst);
    flops(inst) as f64 / (i + o).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{ConvParams, OpParams};
    use cf_tensor::{Region, Shape};

    fn reg(offset: u64, dims: &[usize]) -> Region {
        Region::contiguous(offset, Shape::new(dims.to_vec()))
    }

    #[test]
    fn matmul_flops() {
        let inst = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[4, 5]), reg(20, &[5, 6])],
            vec![reg(50, &[4, 6])],
        )
        .unwrap();
        assert_eq!(flops(&inst), 2 * 4 * 5 * 6);
        assert_eq!(mac_ops(&inst), flops(&inst));
        assert_eq!(io_bytes(&inst), ((20 + 30) * 4, 24 * 4));
    }

    #[test]
    fn conv_flops() {
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(ConvParams::same(1, 0)),
            vec![reg(0, &[1, 5, 5, 3]), reg(75, &[3, 3, 3, 2])],
            vec![reg(129, &[1, 3, 3, 2])],
        )
        .unwrap();
        assert_eq!(flops(&inst), 2 * (3 * 3 * 2) * (3 * 3 * 3));
    }

    #[test]
    fn eltwise_flops_and_oi() {
        let inst = Instruction::new(
            Opcode::Add1D,
            OpParams::None,
            vec![reg(0, &[256]), reg(256, &[256])],
            vec![reg(512, &[256])],
        )
        .unwrap();
        assert_eq!(flops(&inst), 256);
        assert_eq!(mac_ops(&inst), 0);
        // 256 ops / 3·256·4 bytes = 1/12.
        assert!((operational_intensity(&inst) - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn sort_flops_nlogn() {
        let inst = Instruction::new(
            Opcode::Sort1D,
            OpParams::None,
            vec![reg(0, &[1024])],
            vec![reg(1024, &[1024])],
        )
        .unwrap();
        assert_eq!(flops(&inst), 1024 * 10);
    }
}
