use std::fmt;

use cf_isa::IsaError;
use cf_tensor::TensorError;

/// Errors from kernel dispatch and fractal decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum OpsError {
    /// The instruction is semantically malformed.
    Isa(IsaError),
    /// Region/memory access failed.
    Tensor(TensorError),
    /// A split was requested along an axis the opcode does not expose.
    NoSuchAxis {
        /// Requested axis index.
        axis: usize,
        /// Opcode mnemonic.
        op: &'static str,
    },
    /// The opcode cannot be decomposed at all (e.g. `Merge1D`, which is a
    /// streaming local operation).
    NotDecomposable(&'static str),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::Isa(e) => write!(f, "ISA error: {e}"),
            OpsError::Tensor(e) => write!(f, "tensor error: {e}"),
            OpsError::NoSuchAxis { axis, op } => {
                write!(f, "{op} has no split axis {axis}")
            }
            OpsError::NotDecomposable(op) => write!(f, "{op} cannot be fractally decomposed"),
        }
    }
}

impl std::error::Error for OpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpsError::Isa(e) => Some(e),
            OpsError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for OpsError {
    fn from(e: IsaError) -> Self {
        OpsError::Isa(e)
    }
}

impl From<TensorError> for OpsError {
    fn from(e: TensorError) -> Self {
        OpsError::Tensor(e)
    }
}
