//! Fractal-operation theory (paper §2) made executable.
//!
//! An operation `f(X)` is *fractal* when `f(X) = g(f(X_A), f(X_B), …)` for
//! some retrieving operator `g(·)`. This module knows, for every FISA
//! opcode, along which axes the operation decomposes, what dependency class
//! each axis has, what `g(·)` is, and what data redundancy an
//! independent-style execution of an input-dependent split incurs
//! (Table 2) — and performs the actual region arithmetic of a split.
//!
//! Both decomposers of the Cambricon-F controller are built on
//! [`apply_split`]: the sequential decomposer splits until sub-instructions
//! fit local memory, and the parallel decomposer splits across FFUs.

#[cfg(test)]
use cf_isa::ConvParams;
use cf_isa::{Instruction, OpParams, Opcode, Pad, PoolParams};
use cf_tensor::{Region, Shape};

use crate::OpsError;

/// Dependency class of a decomposition (paper §2.2, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dependency {
    /// Pieces touch disjoint inputs and outputs.
    Independent,
    /// Pieces need overlapping/replicated inputs but write disjoint outputs.
    InputDependent,
    /// Piece results must be combined by a retrieving operator `g(·)`.
    OutputDependent,
}

impl std::fmt::Display for Dependency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dependency::Independent => "Independent",
            Dependency::InputDependent => "Input",
            Dependency::OutputDependent => "Output",
        };
        f.write_str(s)
    }
}

/// The retrieving operator `g(·)` of an output-dependent decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Elementwise sum of partials.
    Add,
    /// Elementwise product of partials.
    Mul,
    /// k-way merge of sorted runs (left-biased, payload-carrying).
    Merge,
}

impl std::fmt::Display for ReduceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReduceKind::Add => "Add",
            ReduceKind::Mul => "Mul",
            ReduceKind::Merge => "Merge",
        };
        f.write_str(s)
    }
}

/// One decomposition axis an instruction offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxisInfo {
    /// Stable index to pass to [`apply_split`].
    pub index: usize,
    /// Human-readable axis name (used in Table 2 and diagnostics).
    pub label: &'static str,
    /// Dependency class of splitting along this axis.
    pub dependency: Dependency,
    /// The retrieving operator, for output-dependent axes.
    pub reduce: Option<ReduceKind>,
    /// Data replicated to every piece when executed independently
    /// (Table 2 "Data Redundancy" column).
    pub redundancy: &'static str,
    /// Extent available for splitting (1 ⇒ the axis cannot be split).
    pub extent: usize,
}

/// A piece of an output-dependent split: a full sub-operation whose outputs
/// are *partials* that `g(·)` later combines. The caller (the machine's
/// memory manager) allocates the partial buffers and calls
/// [`PartialPiece::into_instruction`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartialPiece {
    /// Opcode of the piece (same as the parent for every FISA primitive).
    pub op: Opcode,
    /// Parameters of the piece.
    pub params: OpParams,
    /// Input region slices (in the parent instruction's address space).
    pub inputs: Vec<Region>,
    /// Shapes of the partial outputs this piece produces.
    pub partial_shapes: Vec<Shape>,
}

impl PartialPiece {
    /// Materialises the piece as an instruction writing to `outputs`.
    ///
    /// # Errors
    ///
    /// Returns validation errors if `outputs` do not match
    /// [`PartialPiece::partial_shapes`].
    pub fn into_instruction(self, outputs: Vec<Region>) -> Result<Instruction, OpsError> {
        Ok(Instruction::new(self.op, self.params, self.inputs, outputs)?)
    }
}

/// Result of splitting an instruction along one axis.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitOutcome {
    /// Independent / input-dependent split: the sub-instructions jointly
    /// write disjoint slices of the original outputs, so assembling is
    /// `g(x) = x`.
    Direct(Vec<Instruction>),
    /// Output-dependent split: pieces produce partials combined by `kind`.
    Reduce {
        /// The sub-operation pieces.
        pieces: Vec<PartialPiece>,
        /// The retrieving operator `g(·)`.
        kind: ReduceKind,
    },
}

impl SplitOutcome {
    /// Number of pieces.
    pub fn len(&self) -> usize {
        match self {
            SplitOutcome::Direct(v) => v.len(),
            SplitOutcome::Reduce { pieces, .. } => pieces.len(),
        }
    }

    /// Whether the split produced no pieces (never happens for `parts ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lists the decomposition axes of an instruction, in the opcode's
/// preference-neutral canonical order.
pub fn split_axes(inst: &Instruction) -> Vec<AxisInfo> {
    use Dependency::*;
    let dim = |r: &Region, i: usize| r.shape().dim(i);
    let mut axes = Vec::new();
    let mut push = |label, dependency, reduce, redundancy, extent| {
        axes.push(AxisInfo { index: axes.len(), label, dependency, reduce, redundancy, extent });
    };
    match inst.op {
        Opcode::Cv2D => {
            let (x, o) = (&inst.inputs[0], &inst.outputs[0]);
            push("batch", InputDependent, None, "Weight", dim(x, 0));
            push("spatial-h", InputDependent, None, "Weight, Overlapped", dim(o, 1));
            push("spatial-w", InputDependent, None, "Weight, Overlapped", dim(o, 2));
            push("out-feature", InputDependent, None, "Input", dim(o, 3));
            push("in-feature", OutputDependent, Some(ReduceKind::Add), "-", dim(x, 3));
        }
        Opcode::Cv3D => {
            let (x, o) = (&inst.inputs[0], &inst.outputs[0]);
            push("batch", InputDependent, None, "Weight", dim(x, 0));
            push("spatial-d", InputDependent, None, "Weight, Overlapped", dim(o, 1));
            push("spatial-h", InputDependent, None, "Weight, Overlapped", dim(o, 2));
            push("spatial-w", InputDependent, None, "Weight, Overlapped", dim(o, 3));
            push("out-feature", InputDependent, None, "Input", dim(o, 4));
            push("in-feature", OutputDependent, Some(ReduceKind::Add), "-", dim(x, 4));
        }
        Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D => {
            let (x, o) = (&inst.inputs[0], &inst.outputs[0]);
            push("batch", Independent, None, "-", dim(x, 0));
            push("feature", Independent, None, "-", dim(x, 3));
            push("spatial-h", InputDependent, None, "Overlapped", dim(o, 1));
            push("spatial-w", InputDependent, None, "Overlapped", dim(o, 2));
        }
        Opcode::Lrn => {
            let x = &inst.inputs[0];
            push("batch", Independent, None, "-", dim(x, 0));
            push("spatial-h", Independent, None, "-", dim(x, 1));
            push("spatial-w", Independent, None, "-", dim(x, 2));
        }
        Opcode::MatMul => {
            let (a, b) = (&inst.inputs[0], &inst.inputs[1]);
            push("left-rows", InputDependent, None, "Right Matrix", dim(a, 0));
            push("right-cols", InputDependent, None, "Left Matrix", dim(b, 1));
            push("inner", OutputDependent, Some(ReduceKind::Add), "-", dim(a, 1));
        }
        Opcode::Euclidian1D => {
            let (x, y) = (&inst.inputs[0], &inst.inputs[1]);
            push("left", InputDependent, None, "Right Operand", dim(x, 0));
            push("right", InputDependent, None, "Left Operand", dim(y, 0));
            push("dim", OutputDependent, Some(ReduceKind::Add), "-", dim(x, 1));
        }
        Opcode::Sort1D => {
            push("segment", OutputDependent, Some(ReduceKind::Merge), "-", dim(&inst.inputs[0], 0));
        }
        Opcode::Count1D => {
            push("segment", OutputDependent, Some(ReduceKind::Add), "-", dim(&inst.inputs[0], 0));
        }
        Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D | Opcode::Act1D => {
            // Elementwise: any axis splits independently. Expose each
            // dimension, labelled by position.
            static LABELS: [&str; 6] = ["dim-0", "dim-1", "dim-2", "dim-3", "dim-4", "dim-5"];
            let x = &inst.inputs[0];
            for (i, label) in LABELS.iter().enumerate().take(x.shape().rank()) {
                push(label, Independent, None, "-", dim(x, i));
            }
        }
        Opcode::HSum1D => {
            push("segment", OutputDependent, Some(ReduceKind::Add), "-", dim(&inst.inputs[0], 0));
        }
        Opcode::HProd1D => {
            push("segment", OutputDependent, Some(ReduceKind::Mul), "-", dim(&inst.inputs[0], 0));
        }
        Opcode::Merge1D => {
            // Streaming local operation; not fractally decomposed.
        }
    }
    axes
}

/// Input slice and per-piece padding for one spatial axis of a
/// convolution/pooling split: output rows `[out_start, out_start+out_len)`
/// read input rows `[in_start, in_start+in_len)` with piece padding `pad`.
fn spatial_slice(
    in_extent: usize,
    kernel: usize,
    stride: usize,
    pad: Pad,
    out_start: usize,
    out_len: usize,
) -> (usize, usize, Pad) {
    let lo = out_start as isize * stride as isize - pad.before as isize;
    let hi = (out_start + out_len - 1) as isize * stride as isize - pad.before as isize
        + kernel as isize;
    let in_lo = lo.max(0) as usize;
    let in_hi = (hi.min(in_extent as isize)).max(0) as usize;
    let before = (-lo).max(0) as usize;
    let after = (hi - in_extent as isize).max(0) as usize;
    (in_lo, in_hi.saturating_sub(in_lo), Pad { before, after })
}

fn slice_pair(
    inst: &Instruction,
    in_idx: usize,
    in_axis: usize,
    out_axis: usize,
    parts: usize,
) -> Result<Vec<Instruction>, OpsError> {
    // Split one input and the output(s) along matching axes; other inputs
    // are replicated whole.
    let extents = inst.outputs[0].shape().split_axis_extents(out_axis, parts)?;
    extents
        .into_iter()
        .map(|(start, len)| {
            let mut inputs = inst.inputs.clone();
            inputs[in_idx] = inputs[in_idx].slice(in_axis, start, len)?;
            let outputs = inst
                .outputs
                .iter()
                .map(|o| o.slice(out_axis, start, len))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Instruction::new(inst.op, inst.params, inputs, outputs)?)
        })
        .collect()
}

/// Splits `inst` into at most `parts` sub-operations along axis
/// `axis_index` (an index into [`split_axes`]).
///
/// # Errors
///
/// Returns [`OpsError::NoSuchAxis`] for an invalid axis,
/// [`OpsError::NotDecomposable`] for `Merge1D`, and region/validation
/// errors if the split arithmetic produces illegal slices (which indicates
/// a bug in the caller's axis choice, e.g. splitting a spatial axis finer
/// than the kernel allows).
pub fn apply_split(
    inst: &Instruction,
    axis_index: usize,
    parts: usize,
) -> Result<SplitOutcome, OpsError> {
    if inst.op == Opcode::Merge1D {
        return Err(OpsError::NotDecomposable("Merge1D"));
    }
    let axes = split_axes(inst);
    let axis = *axes
        .get(axis_index)
        .ok_or(OpsError::NoSuchAxis { axis: axis_index, op: inst.op.mnemonic() })?;

    match (inst.op, axis.label) {
        // ---- Convolutions ---------------------------------------------
        (Opcode::Cv2D | Opcode::Cv3D, "batch") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 0, 0, 0, parts)?))
        }
        (Opcode::Cv2D | Opcode::Cv3D, lbl @ ("spatial-d" | "spatial-h" | "spatial-w")) => {
            // Spatial axis s (0-based among spatial axes).
            let s_axis = match (inst.op, lbl) {
                (Opcode::Cv3D, "spatial-d") => 0,
                (Opcode::Cv2D, "spatial-h") | (Opcode::Cv3D, "spatial-h") => {
                    if inst.op == Opcode::Cv2D {
                        0
                    } else {
                        1
                    }
                }
                _ => {
                    if inst.op == Opcode::Cv2D {
                        1
                    } else {
                        2
                    }
                }
            };
            let tensor_axis = s_axis + 1; // NHWC / NDHWC
            let p = inst.params.conv();
            let kernel = inst.inputs[1].shape().dim(s_axis);
            let in_extent = inst.inputs[0].shape().dim(tensor_axis);
            let extents = inst.outputs[0].shape().split_axis_extents(tensor_axis, parts)?;
            let mut out = Vec::with_capacity(extents.len());
            for (os, ol) in extents {
                let (in_lo, in_len, pad) =
                    spatial_slice(in_extent, kernel, p.stride, p.pads[s_axis], os, ol);
                let mut piece_params = p;
                piece_params.pads[s_axis] = pad;
                let mut inputs = inst.inputs.clone();
                inputs[0] = inputs[0].slice(tensor_axis, in_lo, in_len)?;
                let outputs = inst
                    .outputs
                    .iter()
                    .map(|o| o.slice(tensor_axis, os, ol))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Instruction::new(inst.op, OpParams::Conv(piece_params), inputs, outputs)?);
            }
            Ok(SplitOutcome::Direct(out))
        }
        (Opcode::Cv2D, "out-feature") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 1, 3, 3, parts)?))
        }
        (Opcode::Cv3D, "out-feature") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 1, 4, 4, parts)?))
        }
        (Opcode::Cv2D | Opcode::Cv3D, "in-feature") => {
            let (x_axis, w_axis) = if inst.op == Opcode::Cv2D { (3, 2) } else { (4, 3) };
            let extents = inst.inputs[0].shape().split_axis_extents(x_axis, parts)?;
            let pieces = extents
                .into_iter()
                .map(|(start, len)| {
                    Ok(PartialPiece {
                        op: inst.op,
                        params: inst.params,
                        inputs: vec![
                            inst.inputs[0].slice(x_axis, start, len)?,
                            inst.inputs[1].slice(w_axis, start, len)?,
                        ],
                        partial_shapes: vec![inst.outputs[0].shape().clone()],
                    })
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Reduce { pieces, kind: ReduceKind::Add })
        }

        // ---- Pooling ---------------------------------------------------
        (Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D, "batch") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 0, 0, 0, parts)?))
        }
        (Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D, "feature") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 0, 3, 3, parts)?))
        }
        (Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D, lbl @ ("spatial-h" | "spatial-w")) => {
            let s_axis = if lbl == "spatial-h" { 0 } else { 1 };
            let tensor_axis = s_axis + 1;
            let p = inst.params.pool();
            let kernel = if s_axis == 0 { p.kh } else { p.kw };
            let in_extent = inst.inputs[0].shape().dim(tensor_axis);
            let extents = inst.outputs[0].shape().split_axis_extents(tensor_axis, parts)?;
            let mut out = Vec::with_capacity(extents.len());
            for (os, ol) in extents {
                let (in_lo, in_len, pad) =
                    spatial_slice(in_extent, kernel, p.stride, p.pads[s_axis], os, ol);
                let mut piece_params: PoolParams = p;
                piece_params.pads[s_axis] = pad;
                let inputs = vec![inst.inputs[0].slice(tensor_axis, in_lo, in_len)?];
                let outputs = vec![inst.outputs[0].slice(tensor_axis, os, ol)?];
                out.push(Instruction::new(inst.op, OpParams::Pool(piece_params), inputs, outputs)?);
            }
            Ok(SplitOutcome::Direct(out))
        }

        // ---- LRN ---------------------------------------------------------
        (Opcode::Lrn, "batch") => Ok(SplitOutcome::Direct(slice_pair(inst, 0, 0, 0, parts)?)),
        (Opcode::Lrn, "spatial-h") => Ok(SplitOutcome::Direct(slice_pair(inst, 0, 1, 1, parts)?)),
        (Opcode::Lrn, "spatial-w") => Ok(SplitOutcome::Direct(slice_pair(inst, 0, 2, 2, parts)?)),

        // ---- Linear algebra ---------------------------------------------
        (Opcode::MatMul, "left-rows") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 0, 0, 0, parts)?))
        }
        (Opcode::MatMul, "right-cols") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 1, 1, 1, parts)?))
        }
        (Opcode::MatMul, "inner") => {
            let extents = inst.inputs[0].shape().split_axis_extents(1, parts)?;
            let pieces = extents
                .into_iter()
                .map(|(start, len)| {
                    Ok(PartialPiece {
                        op: inst.op,
                        params: inst.params,
                        inputs: vec![
                            inst.inputs[0].slice(1, start, len)?,
                            inst.inputs[1].slice(0, start, len)?,
                        ],
                        partial_shapes: vec![inst.outputs[0].shape().clone()],
                    })
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Reduce { pieces, kind: ReduceKind::Add })
        }
        (Opcode::Euclidian1D, "left") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 0, 0, 0, parts)?))
        }
        (Opcode::Euclidian1D, "right") => {
            Ok(SplitOutcome::Direct(slice_pair(inst, 1, 0, 1, parts)?))
        }
        (Opcode::Euclidian1D, "dim") => {
            let extents = inst.inputs[0].shape().split_axis_extents(1, parts)?;
            let pieces = extents
                .into_iter()
                .map(|(start, len)| {
                    Ok(PartialPiece {
                        op: inst.op,
                        params: inst.params,
                        inputs: vec![
                            inst.inputs[0].slice(1, start, len)?,
                            inst.inputs[1].slice(1, start, len)?,
                        ],
                        partial_shapes: vec![inst.outputs[0].shape().clone()],
                    })
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Reduce { pieces, kind: ReduceKind::Add })
        }

        // ---- Sort / count / horizontal ------------------------------------
        (Opcode::Sort1D, "segment") => {
            let extents = inst.inputs[0].shape().split_axis_extents(0, parts)?;
            let pieces = extents
                .into_iter()
                .map(|(start, len)| {
                    let inputs = inst
                        .inputs
                        .iter()
                        .map(|r| r.slice(0, start, len))
                        .collect::<Result<Vec<_>, _>>()?;
                    let partial_shapes = inputs.iter().map(|r| r.shape().clone()).collect();
                    Ok(PartialPiece { op: inst.op, params: inst.params, inputs, partial_shapes })
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Reduce { pieces, kind: ReduceKind::Merge })
        }
        (Opcode::Count1D | Opcode::HSum1D | Opcode::HProd1D, "segment") => {
            let kind = match inst.op {
                Opcode::HProd1D => ReduceKind::Mul,
                _ => ReduceKind::Add,
            };
            let extents = inst.inputs[0].shape().split_axis_extents(0, parts)?;
            let pieces = extents
                .into_iter()
                .map(|(start, len)| {
                    Ok(PartialPiece {
                        op: inst.op,
                        params: inst.params,
                        inputs: vec![inst.inputs[0].slice(0, start, len)?],
                        partial_shapes: vec![Shape::scalar()],
                    })
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Reduce { pieces, kind })
        }

        // ---- Elementwise ---------------------------------------------------
        (Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D | Opcode::Act1D, lbl) => {
            let tensor_axis: usize = lbl
                .strip_prefix("dim-")
                .and_then(|d| d.parse().ok())
                .ok_or(OpsError::NoSuchAxis { axis: axis_index, op: inst.op.mnemonic() })?;
            let extents = inst.outputs[0].shape().split_axis_extents(tensor_axis, parts)?;
            let out = extents
                .into_iter()
                .map(|(start, len)| {
                    let inputs = inst
                        .inputs
                        .iter()
                        .map(|r| r.slice(tensor_axis, start, len))
                        .collect::<Result<Vec<_>, _>>()?;
                    let outputs = inst
                        .outputs
                        .iter()
                        .map(|r| r.slice(tensor_axis, start, len))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Instruction::new(inst.op, inst.params, inputs, outputs)?)
                })
                .collect::<Result<Vec<_>, OpsError>>()?;
            Ok(SplitOutcome::Direct(out))
        }

        _ => Err(OpsError::NoSuchAxis { axis: axis_index, op: inst.op.mnemonic() }),
    }
}

/// Extra bytes moved by a split relative to executing the instruction
/// whole: replicated/overlapping inputs plus partial-output buffers. The
/// decomposition chooser minimises this.
pub fn split_overhead_bytes(inst: &Instruction, outcome: &SplitOutcome) -> u64 {
    let base: u64 = inst.operand_bytes();
    match outcome {
        SplitOutcome::Direct(parts) => {
            let total: u64 = parts.iter().map(Instruction::operand_bytes).sum();
            total.saturating_sub(base)
        }
        SplitOutcome::Reduce { pieces, .. } => {
            let inputs: u64 = pieces.iter().flat_map(|p| p.inputs.iter()).map(Region::bytes).sum();
            let partials: u64 =
                pieces.iter().flat_map(|p| p.partial_shapes.iter()).map(Shape::bytes).sum();
            let base_in: u64 = inst.inputs.iter().map(Region::bytes).sum();
            // Partials are written once and read once by g(·).
            (inputs + 2 * partials).saturating_sub(base_in)
        }
    }
}

/// Picks the axis whose `parts`-way split moves the fewest extra bytes,
/// returning `(axis, outcome)`. Returns `None` when no axis can be split
/// (all extents 1, or the opcode is not decomposable).
pub fn choose_split(inst: &Instruction, parts: usize) -> Option<(AxisInfo, SplitOutcome)> {
    let mut best: Option<(u64, AxisInfo, SplitOutcome)> = None;
    for axis in split_axes(inst) {
        if axis.extent < 2 {
            continue;
        }
        let Ok(outcome) = apply_split(inst, axis.index, parts) else {
            continue;
        };
        if outcome.len() < 2 {
            continue;
        }
        let cost = split_overhead_bytes(inst, &outcome);
        let better = match &best {
            None => true,
            Some((c, ..)) => cost < *c,
        };
        if better {
            best = Some((cost, axis, outcome));
        }
    }
    best.map(|(_, a, o)| (a, o))
}

/// One row of the paper's Table 2 ("Computing primitives analysis").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Primitive name as printed in the paper.
    pub primitive: &'static str,
    /// Decomposition label as printed in the paper.
    pub decomposition: &'static str,
    /// Dependency class.
    pub dependency: Dependency,
    /// `g(·)`.
    pub reduce: Option<ReduceKind>,
    /// Data-redundancy column.
    pub redundancy: &'static str,
}

/// The paper's Table 2, derived from this module's axis metadata. `IP`
/// (inner production) is `Euclidian1D`/`MatMul`-style length-wise
/// reduction; `ELTW` stands for all elementwise opcodes.
pub fn table2() -> Vec<Table2Row> {
    use Dependency::*;
    vec![
        Table2Row {
            primitive: "IP",
            decomposition: "Length-Wise",
            dependency: OutputDependent,
            reduce: Some(ReduceKind::Add),
            redundancy: "-",
        },
        Table2Row {
            primitive: "CONV",
            decomposition: "Feature-Wise",
            dependency: OutputDependent,
            reduce: Some(ReduceKind::Add),
            redundancy: "-",
        },
        Table2Row {
            primitive: "CONV",
            decomposition: "Batch-Wise",
            dependency: InputDependent,
            reduce: None,
            redundancy: "Weight",
        },
        Table2Row {
            primitive: "CONV",
            decomposition: "Spatial",
            dependency: InputDependent,
            reduce: None,
            redundancy: "Weight, Overlapped",
        },
        Table2Row {
            primitive: "POOL",
            decomposition: "Feature-Wise",
            dependency: Independent,
            reduce: None,
            redundancy: "-",
        },
        Table2Row {
            primitive: "POOL",
            decomposition: "Spatial",
            dependency: InputDependent,
            reduce: None,
            redundancy: "Overlapped",
        },
        Table2Row {
            primitive: "MMM",
            decomposition: "Left, Vertical",
            dependency: OutputDependent,
            reduce: Some(ReduceKind::Add),
            redundancy: "-",
        },
        Table2Row {
            primitive: "MMM",
            decomposition: "Right, Vertical",
            dependency: InputDependent,
            reduce: None,
            redundancy: "Left Matrix",
        },
        Table2Row {
            primitive: "ELTW",
            decomposition: "Any",
            dependency: Independent,
            reduce: None,
            redundancy: "-",
        },
        Table2Row {
            primitive: "SORT",
            decomposition: "Any",
            dependency: OutputDependent,
            reduce: Some(ReduceKind::Merge),
            redundancy: "-",
        },
        Table2Row {
            primitive: "COUNT",
            decomposition: "Any",
            dependency: OutputDependent,
            reduce: Some(ReduceKind::Add),
            redundancy: "-",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_tensor::Memory;

    use crate::exec::execute_instruction;

    fn reg(offset: u64, dims: &[usize]) -> Region {
        Region::contiguous(offset, Shape::new(dims.to_vec()))
    }

    /// Runs `inst` both directly and via a `parts`-way split along every
    /// available axis, asserting identical (or ε-close) results.
    fn check_all_axes(inst: &Instruction, mem: &Memory, parts: usize, tol: f32) {
        let mut direct = mem.clone();
        execute_instruction(inst, &mut direct).unwrap();
        for axis in split_axes(inst) {
            if axis.extent < 2 {
                continue;
            }
            let mut fractal = mem.clone();
            match apply_split(inst, axis.index, parts).unwrap() {
                SplitOutcome::Direct(pieces) => {
                    for p in &pieces {
                        execute_instruction(p, &mut fractal).unwrap();
                    }
                }
                SplitOutcome::Reduce { pieces, kind } => {
                    // Allocate partials past the end of the program data.
                    let scratch = fractal.len() as u64;
                    let mut partial_insts = Vec::new();
                    let mut partial_regions: Vec<Vec<Region>> = Vec::new();
                    let mut extra = 0u64;
                    for piece in &pieces {
                        let regions: Vec<Region> = piece
                            .partial_shapes
                            .iter()
                            .map(|s| {
                                let r = Region::contiguous(scratch + extra, s.clone());
                                extra += s.numel();
                                r
                            })
                            .collect();
                        partial_regions.push(regions.clone());
                        partial_insts.push(piece.clone().into_instruction(regions).unwrap());
                    }
                    let mut grown = Memory::new(fractal.len() + extra as usize);
                    grown.as_mut_slice()[..fractal.len()].copy_from_slice(fractal.as_slice());
                    for p in &partial_insts {
                        execute_instruction(p, &mut grown).unwrap();
                    }
                    // Apply g(·).
                    match kind {
                        ReduceKind::Add | ReduceKind::Mul => {
                            let shape = inst.outputs[0].shape().clone();
                            let mut acc = grown.read_region(&partial_regions[0][0]).unwrap();
                            for regs in &partial_regions[1..] {
                                let t = grown.read_region(&regs[0]).unwrap();
                                acc = if kind == ReduceKind::Add {
                                    crate::kernels::eltwise_add(&acc, &t).unwrap()
                                } else {
                                    crate::kernels::eltwise_mul(&acc, &t).unwrap()
                                };
                            }
                            let acc = acc.reshape(shape).unwrap();
                            grown.write_region(&inst.outputs[0], &acc).unwrap();
                        }
                        ReduceKind::Merge => {
                            let with_payload = partial_regions[0].len() == 2;
                            let mut keys = grown.read_region(&partial_regions[0][0]).unwrap();
                            let mut pay = with_payload
                                .then(|| grown.read_region(&partial_regions[0][1]).unwrap());
                            for regs in &partial_regions[1..] {
                                let k2 = grown.read_region(&regs[0]).unwrap();
                                let p2 = with_payload.then(|| grown.read_region(&regs[1]).unwrap());
                                let (k, p) =
                                    crate::kernels::merge(&keys, &k2, pay.as_ref(), p2.as_ref())
                                        .unwrap();
                                keys = k;
                                pay = p;
                            }
                            grown.write_region(&inst.outputs[0], &keys).unwrap();
                            if let Some(pay) = pay {
                                grown.write_region(&inst.outputs[1], &pay).unwrap();
                            }
                        }
                    }
                    // Copy back visible part.
                    let n = fractal.len();
                    fractal.as_mut_slice().copy_from_slice(&grown.as_slice()[..n]);
                }
            }
            // Compare only the output regions: scratch layouts differ.
            for out in &inst.outputs {
                let a = direct.read_region(out).unwrap();
                let b = fractal.read_region(out).unwrap();
                assert!(
                    a.approx_eq(&b, tol),
                    "axis `{}` of {} diverged (max diff {})",
                    axis.label,
                    inst.op,
                    a.max_abs_diff(&b).unwrap()
                );
            }
        }
    }

    fn filled_memory(n: usize, seed: u64) -> Memory {
        let mut mem = Memory::new(n);
        let t = cf_tensor::gen::DataGen::new(seed).uniform(Shape::new(vec![n]), -2.0, 2.0);
        mem.as_mut_slice().copy_from_slice(t.data());
        mem
    }

    #[test]
    fn conv2d_all_axes_match_direct() {
        // x[2,6,6,4] w[3,3,4,5] -> o[2,6,6,5], stride 1 pad 1.
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(ConvParams::same(1, 1)),
            vec![reg(0, &[2, 6, 6, 4]), reg(288, &[3, 3, 4, 5])],
            vec![reg(468, &[2, 6, 6, 5])],
        )
        .unwrap();
        let mem = filled_memory(828, 11);
        check_all_axes(&inst, &mem, 3, 1e-4);
    }

    #[test]
    fn conv2d_strided_spatial_split() {
        let inst = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(ConvParams::same(2, 1)),
            vec![reg(0, &[1, 9, 9, 2]), reg(162, &[3, 3, 2, 3])],
            vec![reg(216, &[1, 5, 5, 3])],
        )
        .unwrap();
        let mem = filled_memory(291, 12);
        check_all_axes(&inst, &mem, 2, 1e-4);
    }

    #[test]
    fn cv3d_all_axes_match_direct() {
        let inst = Instruction::new(
            Opcode::Cv3D,
            OpParams::Conv(ConvParams::same(1, 1)),
            vec![reg(0, &[1, 4, 4, 4, 2]), reg(128, &[3, 3, 3, 2, 3])],
            vec![reg(290, &[1, 4, 4, 4, 3])],
        )
        .unwrap();
        let mem = filled_memory(482, 13);
        check_all_axes(&inst, &mem, 2, 1e-4);
    }

    #[test]
    fn pooling_all_axes_match_direct() {
        for op in [Opcode::Max2D, Opcode::Min2D, Opcode::Avg2D] {
            let inst = Instruction::new(
                op,
                OpParams::Pool(PoolParams::square(3, 2, 1)),
                vec![reg(0, &[2, 7, 7, 3])],
                vec![reg(294, &[2, 4, 4, 3])],
            )
            .unwrap();
            let mem = filled_memory(390, 14);
            check_all_axes(&inst, &mem, 2, 1e-5);
        }
    }

    #[test]
    fn lrn_axes_match_direct() {
        let inst = Instruction::new(
            Opcode::Lrn,
            OpParams::None,
            vec![reg(0, &[2, 4, 4, 8])],
            vec![reg(256, &[2, 4, 4, 8])],
        )
        .unwrap();
        let mem = filled_memory(512, 15);
        check_all_axes(&inst, &mem, 2, 1e-5);
    }

    #[test]
    fn matmul_all_axes_match_direct() {
        let inst = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[6, 8]), reg(48, &[8, 5])],
            vec![reg(88, &[6, 5])],
        )
        .unwrap();
        let mem = filled_memory(118, 16);
        check_all_axes(&inst, &mem, 3, 1e-4);
    }

    #[test]
    fn euclidean_all_axes_match_direct() {
        let inst = Instruction::new(
            Opcode::Euclidian1D,
            OpParams::None,
            vec![reg(0, &[5, 6]), reg(30, &[4, 6])],
            vec![reg(54, &[5, 4])],
        )
        .unwrap();
        let mem = filled_memory(74, 17);
        check_all_axes(&inst, &mem, 2, 1e-4);
    }

    #[test]
    fn sort_with_payload_matches_direct() {
        let inst = Instruction::new(
            Opcode::Sort1D,
            OpParams::None,
            vec![reg(0, &[16]), reg(16, &[16])],
            vec![reg(32, &[16]), reg(48, &[16])],
        )
        .unwrap();
        let mem = filled_memory(64, 18);
        check_all_axes(&inst, &mem, 4, 0.0);
    }

    #[test]
    fn horizontal_and_count_match_direct() {
        for op in [Opcode::HSum1D, Opcode::HProd1D, Opcode::Count1D] {
            let inst =
                Instruction::new(op, OpParams::None, vec![reg(0, &[13])], vec![reg(13, &[1])])
                    .unwrap();
            // Keep values near 1 so HProd stays in float range.
            let mut mem = Memory::new(14);
            let t = cf_tensor::gen::DataGen::new(19).uniform(Shape::new(vec![14]), 0.5, 1.5);
            mem.as_mut_slice().copy_from_slice(t.data());
            check_all_axes(&inst, &mem, 3, 1e-4);
        }
    }

    #[test]
    fn eltwise_all_axes_match_direct() {
        for op in [Opcode::Add1D, Opcode::Sub1D, Opcode::Mul1D] {
            let inst = Instruction::new(
                op,
                OpParams::None,
                vec![reg(0, &[4, 6]), reg(24, &[4, 6])],
                vec![reg(48, &[4, 6])],
            )
            .unwrap();
            let mem = filled_memory(72, 20);
            check_all_axes(&inst, &mem, 3, 0.0);
        }
    }

    #[test]
    fn merge_is_not_decomposable() {
        let inst = Instruction::new(
            Opcode::Merge1D,
            OpParams::None,
            vec![reg(0, &[4]), reg(4, &[4])],
            vec![reg(8, &[8])],
        )
        .unwrap();
        assert!(split_axes(&inst).is_empty());
        assert!(matches!(apply_split(&inst, 0, 2), Err(OpsError::NotDecomposable(_))));
    }

    #[test]
    fn choose_split_prefers_independent_axes() {
        // Pooling: batch/feature splits are overhead-free, spatial overlaps.
        let inst = Instruction::new(
            Opcode::Max2D,
            OpParams::Pool(PoolParams::square(3, 1, 0)),
            vec![reg(0, &[4, 8, 8, 4])],
            vec![reg(1024, &[4, 6, 6, 4])],
        )
        .unwrap();
        let (axis, _) = choose_split(&inst, 4).unwrap();
        assert_eq!(axis.dependency, Dependency::Independent);
    }

    #[test]
    fn choose_split_matmul_avoids_reduction_when_possible() {
        let inst = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[64, 8]), reg(512, &[8, 64])],
            vec![reg(1024, &[64, 64])],
        )
        .unwrap();
        let (axis, _) = choose_split(&inst, 4).unwrap();
        assert_ne!(axis.dependency, Dependency::OutputDependent);
    }

    #[test]
    fn choose_split_none_for_scalar_work() {
        let inst = Instruction::new(
            Opcode::HSum1D,
            OpParams::None,
            vec![reg(0, &[1])],
            vec![reg(1, &[1])],
        )
        .unwrap();
        assert!(choose_split(&inst, 4).is_none());
    }

    #[test]
    fn table2_is_consistent_with_axis_metadata() {
        // CONV rows.
        let conv = Instruction::new(
            Opcode::Cv2D,
            OpParams::Conv(ConvParams::same(1, 0)),
            vec![reg(0, &[2, 5, 5, 3]), reg(150, &[3, 3, 3, 4])],
            vec![reg(258, &[2, 3, 3, 4])],
        )
        .unwrap();
        let axes = split_axes(&conv);
        let feature = axes.iter().find(|a| a.label == "in-feature").unwrap();
        assert_eq!(feature.dependency, Dependency::OutputDependent);
        assert_eq!(feature.reduce, Some(ReduceKind::Add));
        let batch = axes.iter().find(|a| a.label == "batch").unwrap();
        assert_eq!(batch.redundancy, "Weight");
        // Cross-check against the static table.
        let t2 = table2();
        assert!(t2.iter().any(|r| r.primitive == "CONV"
            && r.decomposition == "Batch-Wise"
            && r.redundancy == "Weight"));
        assert_eq!(t2.len(), 11);
    }

    #[test]
    fn spatial_slice_edges() {
        // 6-wide input, kernel 3, stride 1, pad 1 → output 6. First half
        // of the output needs rows 0..4 with pad_before 1.
        let (lo, len, pad) = spatial_slice(6, 3, 1, Pad::same(1), 0, 3);
        assert_eq!((lo, len), (0, 4));
        assert_eq!(pad, Pad { before: 1, after: 0 });
        let (lo, len, pad) = spatial_slice(6, 3, 1, Pad::same(1), 3, 3);
        assert_eq!((lo, len), (2, 4));
        assert_eq!(pad, Pad { before: 0, after: 1 });
    }
}
