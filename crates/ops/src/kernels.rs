//! Reference implementations of every FISA primitive.
//!
//! These kernels are deliberately written for clarity and correctness, not
//! speed: they are the ground truth for the fractal machine's functional
//! mode and the functional model of a leaf accelerator. All of them operate
//! on dense [`Tensor`]s; region gather/scatter is the caller's business
//! (see [`crate::exec`]).

use cf_isa::{ActKind, ConvParams, CountParams, IsaError, LrnParams, Opcode, PoolParams};
use cf_tensor::{Shape, Tensor};

use crate::OpsError;

fn bad(op: Opcode, detail: impl Into<String>) -> OpsError {
    OpsError::Isa(IsaError::BadOperandShape { op, detail: detail.into() })
}

/// 2-D convolution, NHWC layout: `x [N,H,W,Ci] ⊛ w [Kh,Kw,Ci,Co] →
/// [N,Ho,Wo,Co]`, zero padding per [`ConvParams::pads`]`[0..2]`.
///
/// # Errors
///
/// Returns an error if operand ranks/channels disagree or the kernel
/// exceeds the padded input.
pub fn conv2d(x: &Tensor, w: &Tensor, p: &ConvParams) -> Result<Tensor, OpsError> {
    let out_shape = cf_isa::infer_output_shapes(
        Opcode::Cv2D,
        &cf_isa::OpParams::Conv(*p),
        &[x.shape().clone(), w.shape().clone()],
    )?
    .remove(0);
    let (n, h, wi, ci) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
    let (kh, kw, co) = (w.shape().dim(0), w.shape().dim(1), w.shape().dim(3));
    let (ho, wo) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(out_shape);
    let (pt, pl) = (p.pads[0].before as isize, p.pads[1].before as isize);
    for b in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                for oc in 0..co {
                    let mut acc = 0.0f32;
                    for ky in 0..kh {
                        let iy = oy as isize * p.stride as isize + ky as isize - pt;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = ox as isize * p.stride as isize + kx as isize - pl;
                            if ix < 0 || ix >= wi as isize {
                                continue;
                            }
                            for ic in 0..ci {
                                acc += x.get(&[b, iy as usize, ix as usize, ic])
                                    * w.get(&[ky, kx, ic, oc]);
                            }
                        }
                    }
                    out.set(&[b, oy, ox, oc], acc);
                }
            }
        }
    }
    Ok(out)
}

/// 3-D convolution, NDHWC layout: `x [N,D,H,W,Ci] ⊛ w [Kd,Kh,Kw,Ci,Co] →
/// [N,Do,Ho,Wo,Co]`.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv3d(x: &Tensor, w: &Tensor, p: &ConvParams) -> Result<Tensor, OpsError> {
    let out_shape = cf_isa::infer_output_shapes(
        Opcode::Cv3D,
        &cf_isa::OpParams::Conv(*p),
        &[x.shape().clone(), w.shape().clone()],
    )?
    .remove(0);
    let (n, d, h, wi, ci) =
        (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2), x.shape().dim(3), x.shape().dim(4));
    let (kd, kh, kw, co) = (w.shape().dim(0), w.shape().dim(1), w.shape().dim(2), w.shape().dim(4));
    let (dd, ho, wo) = (out_shape.dim(1), out_shape.dim(2), out_shape.dim(3));
    let mut out = Tensor::zeros(out_shape);
    let (pd, pt, pl) =
        (p.pads[0].before as isize, p.pads[1].before as isize, p.pads[2].before as isize);
    let s = p.stride as isize;
    for b in 0..n {
        for od in 0..dd {
            for oy in 0..ho {
                for ox in 0..wo {
                    for oc in 0..co {
                        let mut acc = 0.0f32;
                        for kz in 0..kd {
                            let iz = od as isize * s + kz as isize - pd;
                            if iz < 0 || iz >= d as isize {
                                continue;
                            }
                            for ky in 0..kh {
                                let iy = oy as isize * s + ky as isize - pt;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = ox as isize * s + kx as isize - pl;
                                    if ix < 0 || ix >= wi as isize {
                                        continue;
                                    }
                                    for ic in 0..ci {
                                        acc +=
                                            x.get(&[b, iz as usize, iy as usize, ix as usize, ic])
                                                * w.get(&[kz, ky, kx, ic, oc]);
                                    }
                                }
                            }
                        }
                        out.set(&[b, od, oy, ox, oc], acc);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Pooling mode selector shared by `Max2D`/`Min2D`/`Avg2D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Window maximum.
    Max,
    /// Window minimum.
    Min,
    /// Window mean (over the window size, padding counted as absent).
    Avg,
}

/// 2-D pooling over NHWC input.
///
/// Average pooling divides by the number of *valid* (non-padding) elements
/// in the window, so spatial fractal splits remain exact.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a window exceeding the padded
/// input.
pub fn pool2d(x: &Tensor, p: &PoolParams, mode: PoolMode) -> Result<Tensor, OpsError> {
    let op = match mode {
        PoolMode::Max => Opcode::Max2D,
        PoolMode::Min => Opcode::Min2D,
        PoolMode::Avg => Opcode::Avg2D,
    };
    let out_shape =
        cf_isa::infer_output_shapes(op, &cf_isa::OpParams::Pool(*p), &[x.shape().clone()])?
            .remove(0);
    let (n, h, wi, c) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
    let (ho, wo) = (out_shape.dim(1), out_shape.dim(2));
    let mut out = Tensor::zeros(out_shape);
    let (pt, pl) = (p.pads[0].before as isize, p.pads[1].before as isize);
    for b in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                for ch in 0..c {
                    let mut acc: Option<f32> = None;
                    let mut count = 0usize;
                    for ky in 0..p.kh {
                        let iy = oy as isize * p.stride as isize + ky as isize - pt;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..p.kw {
                            let ix = ox as isize * p.stride as isize + kx as isize - pl;
                            if ix < 0 || ix >= wi as isize {
                                continue;
                            }
                            let v = x.get(&[b, iy as usize, ix as usize, ch]);
                            count += 1;
                            acc = Some(match (acc, mode) {
                                (None, _) => v,
                                (Some(a), PoolMode::Max) => a.max(v),
                                (Some(a), PoolMode::Min) => a.min(v),
                                (Some(a), PoolMode::Avg) => a + v,
                            });
                        }
                    }
                    let v = match (acc, mode) {
                        (Some(a), PoolMode::Avg) => a / count as f32,
                        (Some(a), _) => a,
                        // A window entirely inside the padding: define as 0.
                        (None, _) => 0.0,
                    };
                    out.set(&[b, oy, ox, ch], v);
                }
            }
        }
    }
    Ok(out)
}

/// Local response normalisation across channels (AlexNet formulation):
/// `y = x / (k + α/size · Σ x²)^β` over a window of `size` channels.
///
/// # Errors
///
/// Returns an error for non-rank-4 input.
pub fn lrn(x: &Tensor, p: &LrnParams) -> Result<Tensor, OpsError> {
    if x.shape().rank() != 4 {
        return Err(bad(Opcode::Lrn, "need [N,H,W,C]"));
    }
    let (n, h, w, c) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2), x.shape().dim(3));
    let half = p.size / 2;
    let mut out = Tensor::zeros(x.shape().clone());
    for b in 0..n {
        for y in 0..h {
            for xx in 0..w {
                for ch in 0..c {
                    let lo = ch.saturating_sub(half);
                    let hi = (ch + half).min(c - 1);
                    let mut sum = 0.0f32;
                    for j in lo..=hi {
                        let v = x.get(&[b, y, xx, j]);
                        sum += v * v;
                    }
                    let denom = (p.k + p.alpha / p.size as f32 * sum).powf(p.beta);
                    out.set(&[b, y, xx, ch], x.get(&[b, y, xx, ch]) / denom);
                }
            }
        }
    }
    Ok(out)
}

/// Matrix multiplication `A [M,K] × B [K,N] → [M,N]` (ikj loop order).
///
/// # Errors
///
/// Returns an error when inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, OpsError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 || a.shape().dim(1) != b.shape().dim(0) {
        return Err(bad(Opcode::MatMul, format!("bad shapes {} x {}", a.shape(), b.shape())));
    }
    let (m, k, n) = (a.shape().dim(0), a.shape().dim(1), b.shape().dim(1));
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for i in 0..m {
        for l in 0..k {
            let av = ad[i * k + l];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[l * n..(l + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
    Ok(Tensor::from_vec(Shape::new(vec![m, n]), out))
}

/// Pairwise **squared** Euclidean distance `X [n,d], Y [m,d] → [n,m]`.
///
/// Squared distances make the `d`-split an additive reduction, which is the
/// output-dependent fractal form the paper assigns to distance computation;
/// consumers that need true distances compose with `Act1D`/host math.
///
/// # Errors
///
/// Returns an error when the `d` dimensions disagree.
pub fn euclidean_sq(x: &Tensor, y: &Tensor) -> Result<Tensor, OpsError> {
    if x.shape().rank() != 2 || y.shape().rank() != 2 || x.shape().dim(1) != y.shape().dim(1) {
        return Err(bad(Opcode::Euclidian1D, format!("bad shapes {} vs {}", x.shape(), y.shape())));
    }
    let (n, d, m) = (x.shape().dim(0), x.shape().dim(1), y.shape().dim(0));
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let xi = &x.data()[i * d..(i + 1) * d];
        for j in 0..m {
            let yj = &y.data()[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for l in 0..d {
                let diff = xi[l] - yj[l];
                acc += diff * diff;
            }
            out[i * m + j] = acc;
        }
    }
    Ok(Tensor::from_vec(Shape::new(vec![n, m]), out))
}

/// Stable ascending merge sort of `keys`, permuting `payload` alongside when
/// present. Returns `(sorted_keys, permuted_payload)`.
///
/// # Errors
///
/// Returns an error when the payload shape differs from the key shape.
pub fn sort(keys: &Tensor, payload: Option<&Tensor>) -> Result<(Tensor, Option<Tensor>), OpsError> {
    if let Some(p) = payload {
        if p.shape() != keys.shape() {
            return Err(bad(Opcode::Sort1D, "payload shape mismatch"));
        }
    }
    let mut idx: Vec<usize> = (0..keys.data().len()).collect();
    idx.sort_by(|&a, &b| keys.data()[a].total_cmp(&keys.data()[b]));
    let sorted =
        Tensor::from_vec(keys.shape().clone(), idx.iter().map(|&i| keys.data()[i]).collect());
    let perm = payload
        .map(|p| Tensor::from_vec(p.shape().clone(), idx.iter().map(|&i| p.data()[i]).collect()));
    Ok((sorted, perm))
}

/// Left-biased merge of two ascending runs (with optional payloads carried
/// alongside). Left bias (ties taken from `a`) keeps hierarchical sorting
/// bit-identical to the stable flat sort.
///
/// # Errors
///
/// Returns an error when payload shapes differ from key shapes or only one
/// payload is supplied.
pub fn merge(
    a: &Tensor,
    b: &Tensor,
    pa: Option<&Tensor>,
    pb: Option<&Tensor>,
) -> Result<(Tensor, Option<Tensor>), OpsError> {
    if pa.is_some() != pb.is_some() {
        return Err(bad(Opcode::Merge1D, "both payloads or neither"));
    }
    if let (Some(pa), Some(pb)) = (pa, pb) {
        if pa.shape() != a.shape() || pb.shape() != b.shape() {
            return Err(bad(Opcode::Merge1D, "payload shape mismatch"));
        }
    }
    let (na, nb) = (a.data().len(), b.data().len());
    let mut keys = Vec::with_capacity(na + nb);
    let mut pay = pa.map(|_| Vec::with_capacity(na + nb));
    let (mut i, mut j) = (0usize, 0usize);
    while i < na || j < nb {
        let take_a = j >= nb || (i < na && a.data()[i] <= b.data()[j]);
        if take_a {
            keys.push(a.data()[i]);
            if let (Some(v), Some(pa)) = (pay.as_mut(), pa) {
                v.push(pa.data()[i]);
            }
            i += 1;
        } else {
            keys.push(b.data()[j]);
            if let (Some(v), Some(pb)) = (pay.as_mut(), pb) {
                v.push(pb.data()[j]);
            }
            j += 1;
        }
    }
    let shape = Shape::new(vec![na + nb]);
    Ok((Tensor::from_vec(shape.clone(), keys), pay.map(|v| Tensor::from_vec(shape, v))))
}

/// Counts elements of `x` within `p.tol` of `p.value`; returns a scalar
/// tensor.
pub fn count(x: &Tensor, p: &CountParams) -> Tensor {
    let c = x.data().iter().filter(|&&v| (v - p.value).abs() <= p.tol).count();
    Tensor::scalar(c as f32)
}

/// Elementwise addition of equal-shaped tensors.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn eltwise_add(x: &Tensor, y: &Tensor) -> Result<Tensor, OpsError> {
    eltwise(Opcode::Add1D, x, y, |a, b| a + b)
}

/// Elementwise subtraction.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn eltwise_sub(x: &Tensor, y: &Tensor) -> Result<Tensor, OpsError> {
    eltwise(Opcode::Sub1D, x, y, |a, b| a - b)
}

/// Elementwise multiplication.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn eltwise_mul(x: &Tensor, y: &Tensor) -> Result<Tensor, OpsError> {
    eltwise(Opcode::Mul1D, x, y, |a, b| a * b)
}

fn eltwise(
    op: Opcode,
    x: &Tensor,
    y: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, OpsError> {
    if x.shape() != y.shape() {
        return Err(bad(op, format!("shape mismatch {} vs {}", x.shape(), y.shape())));
    }
    let data = x.data().iter().zip(y.data()).map(|(&a, &b)| f(a, b)).collect();
    Ok(Tensor::from_vec(x.shape().clone(), data))
}

/// Elementwise activation.
pub fn activate(x: &Tensor, kind: ActKind) -> Tensor {
    let f = |v: f32| match kind {
        ActKind::Relu => v.max(0.0),
        ActKind::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        ActKind::Tanh => v.tanh(),
    };
    Tensor::from_vec(x.shape().clone(), x.data().iter().map(|&v| f(v)).collect())
}

/// Horizontal sum `x → [1]`.
pub fn hsum(x: &Tensor) -> Tensor {
    Tensor::scalar(x.data().iter().sum())
}

/// Horizontal product `x → [1]`.
pub fn hprod(x: &Tensor) -> Tensor {
    Tensor::scalar(x.data().iter().product())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::Pad;
    use cf_tensor::gen::DataGen;

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input channel.
        let x = Tensor::from_fn(Shape::new(vec![1, 3, 3, 1]), |i| (i[1] * 3 + i[2]) as f32);
        let w = Tensor::filled(Shape::new(vec![1, 1, 1, 1]), 1.0);
        let y = conv2d(&x, &w, &ConvParams::default()).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_hand_computed() {
        // 2x2 input, 2x2 all-ones kernel, no pad: single output = sum.
        let x = Tensor::from_vec(Shape::new(vec![1, 2, 2, 1]), vec![1., 2., 3., 4.]);
        let w = Tensor::filled(Shape::new(vec![2, 2, 1, 1]), 1.0);
        let y = conv2d(&x, &w, &ConvParams::default()).unwrap();
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn conv2d_padding_and_stride() {
        let x = Tensor::filled(Shape::new(vec![1, 3, 3, 1]), 1.0);
        let w = Tensor::filled(Shape::new(vec![3, 3, 1, 1]), 1.0);
        let y = conv2d(&x, &w, &ConvParams::same(2, 1)).unwrap();
        // Output 2x2; corner windows see 4 valid elements, etc.
        assert_eq!(y.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn conv2d_asymmetric_pad() {
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 2, 1]), vec![5., 7.]);
        let w = Tensor::filled(Shape::new(vec![1, 2, 1, 1]), 1.0);
        let p = ConvParams {
            stride: 1,
            pads: [Pad::default(), Pad { before: 1, after: 0 }, Pad::default()],
        };
        let y = conv2d(&x, &w, &p).unwrap();
        // Padded row: [0, 5, 7] → windows [0+5, 5+7].
        assert_eq!(y.data(), &[5.0, 12.0]);
    }

    #[test]
    fn conv3d_reduces_to_2d_when_depth_one() {
        let mut g = DataGen::new(5);
        let x2 = g.uniform(Shape::new(vec![2, 4, 4, 3]), -1.0, 1.0);
        let w2 = g.uniform(Shape::new(vec![3, 3, 3, 2]), -1.0, 1.0);
        let p = ConvParams::same(1, 0);
        let y2 = conv2d(&x2, &w2, &p).unwrap();
        let x3 = x2.clone().reshape(Shape::new(vec![2, 1, 4, 4, 3])).unwrap();
        let w3 = w2.clone().reshape(Shape::new(vec![1, 3, 3, 3, 2])).unwrap();
        let y3 = conv3d(&x3, &w3, &p).unwrap();
        assert_eq!(y3.data(), y2.data());
    }

    #[test]
    fn pooling_modes() {
        let x = Tensor::from_vec(Shape::new(vec![1, 2, 2, 1]), vec![1., 2., 3., 4.]);
        let p = PoolParams::square(2, 2, 0);
        assert_eq!(pool2d(&x, &p, PoolMode::Max).unwrap().data(), &[4.0]);
        assert_eq!(pool2d(&x, &p, PoolMode::Min).unwrap().data(), &[1.0]);
        assert_eq!(pool2d(&x, &p, PoolMode::Avg).unwrap().data(), &[2.5]);
    }

    #[test]
    fn avg_pool_ignores_padding() {
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 2, 1]), vec![2., 4.]);
        let p = PoolParams { kh: 1, kw: 2, stride: 2, pads: [Pad::default(), Pad::same(1)] };
        let y = pool2d(&x, &p, PoolMode::Avg).unwrap();
        // Windows: [pad,2] → 2.0 (1 valid), [4,pad] → 4.0.
        assert_eq!(y.data(), &[2.0, 4.0]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(Shape::new(vec![2, 2]), vec![5., 6., 7., 8.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity() {
        let mut g = DataGen::new(2);
        let a = g.uniform(Shape::new(vec![4, 4]), -1.0, 1.0);
        let id = Tensor::from_fn(Shape::new(vec![4, 4]), |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id).unwrap().data(), a.data());
    }

    #[test]
    fn euclidean_sq_hand_computed() {
        let x = Tensor::from_vec(Shape::new(vec![1, 2]), vec![0., 0.]);
        let y = Tensor::from_vec(Shape::new(vec![2, 2]), vec![3., 4., 1., 0.]);
        let d = euclidean_sq(&x, &y).unwrap();
        assert_eq!(d.data(), &[25.0, 1.0]);
    }

    #[test]
    fn sort_with_payload_is_stable() {
        let keys = Tensor::from_vec(Shape::new(vec![5]), vec![3., 1., 3., 0., 1.]);
        let pay = Tensor::from_vec(Shape::new(vec![5]), vec![10., 11., 12., 13., 14.]);
        let (k, p) = sort(&keys, Some(&pay)).unwrap();
        assert_eq!(k.data(), &[0., 1., 1., 3., 3.]);
        assert_eq!(p.unwrap().data(), &[13., 11., 14., 10., 12.]);
    }

    #[test]
    fn merge_left_biased() {
        let a = Tensor::from_vec(Shape::new(vec![2]), vec![1., 3.]);
        let b = Tensor::from_vec(Shape::new(vec![3]), vec![1., 2., 4.]);
        let pa = Tensor::from_vec(Shape::new(vec![2]), vec![100., 101.]);
        let pb = Tensor::from_vec(Shape::new(vec![3]), vec![200., 201., 202.]);
        let (k, p) = merge(&a, &b, Some(&pa), Some(&pb)).unwrap();
        assert_eq!(k.data(), &[1., 1., 2., 3., 4.]);
        assert_eq!(p.unwrap().data(), &[100., 200., 201., 101., 202.]);
    }

    #[test]
    fn merge_equals_sort_of_concat() {
        let mut g = DataGen::new(3);
        let a0 = g.uniform(Shape::new(vec![17]), -5.0, 5.0);
        let b0 = g.uniform(Shape::new(vec![9]), -5.0, 5.0);
        let (a, _) = sort(&a0, None).unwrap();
        let (b, _) = sort(&b0, None).unwrap();
        let (m, _) = merge(&a, &b, None, None).unwrap();
        let mut concat = a0.data().to_vec();
        concat.extend_from_slice(b0.data());
        let (expect, _) = sort(&Tensor::from_vec(Shape::new(vec![26]), concat), None).unwrap();
        assert_eq!(m.data(), expect.data());
    }

    #[test]
    fn count_with_tolerance() {
        let x = Tensor::from_vec(Shape::new(vec![4]), vec![1.0, 1.05, 2.0, 0.99]);
        let c = count(&x, &CountParams { value: 1.0, tol: 0.02 });
        assert_eq!(c.data(), &[2.0]);
    }

    #[test]
    fn eltwise_and_horizontal() {
        let x = Tensor::from_vec(Shape::new(vec![3]), vec![1., 2., 3.]);
        let y = Tensor::from_vec(Shape::new(vec![3]), vec![4., 5., 6.]);
        assert_eq!(eltwise_add(&x, &y).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(eltwise_sub(&x, &y).unwrap().data(), &[-3., -3., -3.]);
        assert_eq!(eltwise_mul(&x, &y).unwrap().data(), &[4., 10., 18.]);
        assert_eq!(hsum(&x).data(), &[6.0]);
        assert_eq!(hprod(&x).data(), &[6.0]);
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(Shape::new(vec![2]), vec![-1.0, 1.0]);
        assert_eq!(activate(&x, ActKind::Relu).data(), &[0.0, 1.0]);
        let s = activate(&x, ActKind::Sigmoid);
        assert!((s.data()[0] - 0.26894).abs() < 1e-4);
        let t = activate(&x, ActKind::Tanh);
        assert!((t.data()[1] - 0.76159).abs() < 1e-4);
    }

    #[test]
    fn lrn_normalises() {
        let x = Tensor::filled(Shape::new(vec![1, 1, 1, 4]), 2.0);
        let p = LrnParams { size: 5, alpha: 1.0, beta: 1.0, k: 0.0 };
        let y = lrn(&x, &p).unwrap();
        // Channel 0 window covers channels 0..=2: sum sq = 12, denom = 12/5.
        assert!((y.get(&[0, 0, 0, 0]) - 2.0 / (12.0 / 5.0)).abs() < 1e-6);
    }

    #[test]
    fn shape_errors_reported() {
        let a = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![2, 3]));
        assert!(matmul(&a, &b).is_err());
        let c = Tensor::zeros(Shape::new(vec![2, 4]));
        assert!(euclidean_sq(&a, &c).is_err());
        assert!(eltwise_add(&a, &c).is_err());
    }
}
