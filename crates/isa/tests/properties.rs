//! Property tests for FISA: assembly round-tripping and builder/validator
//! consistency over randomly generated programs.

use cf_isa::{
    parse_program, render_program, ActKind, ConvParams, OpParams, Opcode, PoolParams,
    ProgramBuilder,
};
use proptest::prelude::*;

/// A strategy producing random (but valid) single-instruction programs.
fn arb_program() -> impl Strategy<Value = cf_isa::Program> {
    prop_oneof![
        // MatMul
        (1usize..20, 1usize..20, 1usize..20).prop_map(|(m, k, n)| {
            let mut b = ProgramBuilder::new();
            let a = b.alloc("a", vec![m, k]);
            let w = b.alloc("w", vec![k, n]);
            b.apply(Opcode::MatMul, [a, w]).unwrap();
            b.build()
        }),
        // Conv2D with random stride/pad
        (1usize..3, 4usize..10, 1usize..4, 1usize..4, 1usize..3, 0usize..2).prop_map(
            |(n, hw, ci, co, s, p)| {
                let mut b = ProgramBuilder::new();
                let x = b.alloc("x", vec![n, hw, hw, ci]);
                let w = b.alloc("w", vec![3, 3, ci, co]);
                b.apply_with(Opcode::Cv2D, OpParams::Conv(ConvParams::same(s, p)), [x, w]).unwrap();
                b.build()
            }
        ),
        // Pooling
        (1usize..3, 4usize..12, 1usize..5).prop_map(|(n, hw, c)| {
            let mut b = ProgramBuilder::new();
            let x = b.alloc("x", vec![n, hw, hw, c]);
            b.apply_with(Opcode::Max2D, OpParams::Pool(PoolParams::square(2, 2, 0)), [x]).unwrap();
            b.build()
        }),
        // Elementwise chains
        (1usize..200, 0usize..3).prop_map(|(n, kind)| {
            let mut b = ProgramBuilder::new();
            let x = b.alloc("x", vec![n]);
            let y = b.alloc("y", vec![n]);
            let op = [Opcode::Add1D, Opcode::Sub1D, Opcode::Mul1D][kind];
            let z = b.apply(op, [x, y]).unwrap();
            b.apply_with(Opcode::Act1D, OpParams::Act(ActKind::Tanh), [z[0]]).unwrap();
            b.build()
        }),
        // Sort with payload
        (1usize..100).prop_map(|n| {
            let mut b = ProgramBuilder::new();
            let k = b.alloc("k", vec![n]);
            let v = b.alloc("v", vec![n]);
            b.apply(Opcode::Sort1D, [k, v]).unwrap();
            b.build()
        }),
    ]
}

proptest! {
    #[test]
    fn assembly_roundtrip(program in arb_program()) {
        let text = render_program(&program);
        let back = parse_program(&text).unwrap();
        prop_assert_eq!(program.instructions(), back.instructions());
        // And rendering is a fixed point.
        prop_assert_eq!(render_program(&back), text);
    }

    #[test]
    fn every_instruction_revalidates(program in arb_program()) {
        for inst in program.instructions() {
            prop_assert!(inst.validate().is_ok());
            prop_assert!(inst.granularity() > 0);
            prop_assert!(inst.operand_bytes() >= inst.granularity());
        }
    }

    #[test]
    fn symbols_are_disjoint_and_inside_footprint(program in arb_program()) {
        let symbols = program.symbols();
        for (i, (_, a)) in symbols.iter().enumerate() {
            prop_assert!(a.end() < program.extern_elems());
            for (_, b) in symbols.iter().skip(i + 1) {
                prop_assert!(!a.may_overlap(b), "symbols overlap");
            }
        }
    }
}
