use std::fmt;

use cf_tensor::TensorError;

use crate::Opcode;

/// Errors raised while constructing or validating FISA programs.
#[derive(Debug, Clone, PartialEq)]
pub enum IsaError {
    /// A mnemonic did not name any FISA opcode.
    UnknownOpcode(String),
    /// The instruction has the wrong number of input operands.
    BadInputArity {
        /// The opcode being validated.
        op: Opcode,
        /// Accepted operand counts.
        expected: &'static [usize],
        /// Supplied operand count.
        actual: usize,
    },
    /// The instruction has the wrong number of output operands.
    BadOutputArity {
        /// The opcode being validated.
        op: Opcode,
        /// Required operand count.
        expected: usize,
        /// Supplied operand count.
        actual: usize,
    },
    /// Operand shapes are inconsistent with the opcode semantics.
    BadOperandShape {
        /// The opcode being validated.
        op: Opcode,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An underlying tensor/region operation failed.
    Tensor(TensorError),
    /// Assembly text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the syntax problem.
        detail: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownOpcode(s) => write!(f, "unknown opcode `{s}`"),
            IsaError::BadInputArity { op, expected, actual } => {
                write!(f, "{op} takes {expected:?} inputs, got {actual}")
            }
            IsaError::BadOutputArity { op, expected, actual } => {
                write!(f, "{op} produces {expected} outputs, got {actual}")
            }
            IsaError::BadOperandShape { op, detail } => write!(f, "{op}: {detail}"),
            IsaError::Tensor(e) => write!(f, "tensor error: {e}"),
            IsaError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
        }
    }
}

impl std::error::Error for IsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IsaError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for IsaError {
    fn from(e: TensorError) -> Self {
        IsaError::Tensor(e)
    }
}
