//! FISA — the Fractal Instruction Set Architecture of Cambricon-F.
//!
//! A FISA instruction is the 3-tuple `⟨O, P, G⟩` of the paper (§3.2): an
//! operation [`Opcode`] with attribute parameters [`OpParams`], a finite set
//! of operands (input/output [`cf_tensor::Region`]s in the *enclosing*
//! memory — FISA has no load/store and no architectural registers, §4), and
//! a granularity indicator (the operand shapes).
//!
//! The same [`Program`] runs unmodified on every Cambricon-F instance —
//! that is the paper's programming-productivity thesis — because programs
//! mention only external memory and *complete* ML primitives; all
//! decomposition is done by the machine (`cf-core`).
//!
//! # Examples
//!
//! Build the vector-add program of Figure 4(a):
//!
//! ```
//! use cf_isa::{Opcode, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.alloc("x", vec![1024]);
//! let y = b.alloc("y", vec![1024]);
//! let z = b.alloc("z", vec![1024]);
//! b.emit(Opcode::Add1D, [x, y], [z])?;
//! let program = b.build();
//! assert_eq!(program.instructions().len(), 1);
//! # Ok::<(), cf_isa::IsaError>(())
//! ```

pub mod deps;
mod error;
mod instruction;
mod opcode;
mod params;
mod program;
mod shape_infer;
mod text;

pub use error::IsaError;
pub use instruction::Instruction;
pub use opcode::{Opcode, OpcodeCategory};
pub use params::{ActKind, ConvParams, CountParams, LrnParams, OpParams, Pad, PoolParams};
pub use program::{Program, ProgramBuilder, TensorHandle};
pub use shape_infer::infer_output_shapes;
pub use text::{parse_program, render_program};
