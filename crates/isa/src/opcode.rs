use std::fmt;
use std::str::FromStr;

use crate::IsaError;

/// The FISA operation inventory (paper Table 3).
///
/// Each opcode is a *complete* machine-learning primitive; the granularity
/// is carried by the operand shapes, not the opcode. `Reduction`-category
/// opcodes are the ones the paper says "will be considered as a reduction
/// operation by Cambricon-F and tend to execute on LFUs" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// 2-D convolution: `in [N,H,W,Ci] ⊛ w [Kh,Kw,Ci,Co] → [N,Ho,Wo,Co]`.
    Cv2D,
    /// 3-D convolution: `in [N,D,H,W,Ci] ⊛ w [Kd,Kh,Kw,Ci,Co] → [N,Do,Ho,Wo,Co]`.
    Cv3D,
    /// 2-D max pooling: `in [N,H,W,C] → [N,Ho,Wo,C]`.
    Max2D,
    /// 2-D min pooling.
    Min2D,
    /// 2-D average pooling.
    Avg2D,
    /// Local response normalisation across channels (AlexNet-style).
    Lrn,
    /// Matrix multiplication: `A [M,K] × B [K,N] → [M,N]`.
    MatMul,
    /// Pairwise squared Euclidean distance: `X [n,d], Y [m,d] → [n,m]`.
    ///
    /// Defined on *squared* distances so that the dimension split is an
    /// additive reduction — exactly the output-dependent fractal form the
    /// paper assigns to distance computation.
    Euclidian1D,
    /// Merge sort of a key vector, optionally permuting a payload vector
    /// alongside: `keys [n] (, payload [n]) → sorted [n] (, payload [n])`.
    Sort1D,
    /// Occurrence count: elements of `x [n]` equal to the parameter value
    /// (within tolerance) → `[1]`.
    Count1D,
    /// Elementwise addition of equal-shaped tensors.
    Add1D,
    /// Elementwise subtraction.
    Sub1D,
    /// Elementwise multiplication.
    Mul1D,
    /// Elementwise unary activation (kind chosen by parameter).
    Act1D,
    /// Horizontal sum: `x [n] → [1]`.
    HSum1D,
    /// Horizontal product: `x [n] → [1]`.
    HProd1D,
    /// Merge of two sorted key vectors (with optional payloads):
    /// `a [n], b [m] (, pa [n], pb [m]) → [n+m] (, payload [n+m])`.
    Merge1D,
}

/// Table 3 groups for the instruction inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeCategory {
    /// Deep-learning primitives (convolution, pooling, LRN).
    DeepLearning,
    /// Linear-algebra primitives (matrix multiply, Euclidean distance).
    LinearAlgebra,
    /// Sorting.
    Sort,
    /// Counting.
    Count,
    /// Low-operational-intensity operations that tend to execute on LFUs.
    Reduction,
}

impl Opcode {
    /// Every opcode, in Table 3 order.
    pub const ALL: [Opcode; 17] = [
        Opcode::Cv2D,
        Opcode::Cv3D,
        Opcode::Max2D,
        Opcode::Min2D,
        Opcode::Avg2D,
        Opcode::Lrn,
        Opcode::MatMul,
        Opcode::Euclidian1D,
        Opcode::Sort1D,
        Opcode::Count1D,
        Opcode::Add1D,
        Opcode::Sub1D,
        Opcode::Mul1D,
        Opcode::Act1D,
        Opcode::HSum1D,
        Opcode::HProd1D,
        Opcode::Merge1D,
    ];

    /// The Table 3 category of the opcode.
    pub fn category(self) -> OpcodeCategory {
        match self {
            Opcode::Cv2D
            | Opcode::Cv3D
            | Opcode::Max2D
            | Opcode::Min2D
            | Opcode::Avg2D
            | Opcode::Lrn => OpcodeCategory::DeepLearning,
            Opcode::MatMul | Opcode::Euclidian1D => OpcodeCategory::LinearAlgebra,
            Opcode::Sort1D => OpcodeCategory::Sort,
            Opcode::Count1D => OpcodeCategory::Count,
            Opcode::Add1D
            | Opcode::Sub1D
            | Opcode::Mul1D
            | Opcode::Act1D
            | Opcode::HSum1D
            | Opcode::HProd1D
            | Opcode::Merge1D => OpcodeCategory::Reduction,
        }
    }

    /// Whether the controller prefers to run the whole instruction on the
    /// node's LFU instead of fractally on FFUs (low operational intensity,
    /// §3.2). The reduction controller may still commission it to FFUs when
    /// the LFU is absent or predicted slower (§3.3).
    pub fn prefers_lfu(self) -> bool {
        self.category() == OpcodeCategory::Reduction
    }

    /// Canonical mnemonic, as printed in Table 3.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Cv2D => "Cv2D",
            Opcode::Cv3D => "Cv3D",
            Opcode::Max2D => "Max2D",
            Opcode::Min2D => "Min2D",
            Opcode::Avg2D => "Avg2D",
            Opcode::Lrn => "Lrn",
            Opcode::MatMul => "MatMul",
            Opcode::Euclidian1D => "Euclidian1D",
            Opcode::Sort1D => "Sort1D",
            Opcode::Count1D => "Count1D",
            Opcode::Add1D => "Add1D",
            Opcode::Sub1D => "Sub1D",
            Opcode::Mul1D => "Mul1D",
            Opcode::Act1D => "Act1D",
            Opcode::HSum1D => "HSum1D",
            Opcode::HProd1D => "HProd1D",
            Opcode::Merge1D => "Merge1D",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Opcode {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::ALL
            .iter()
            .copied()
            .find(|op| op.mnemonic().eq_ignore_ascii_case(s))
            .ok_or_else(|| IsaError::UnknownOpcode(s.to_string()))
    }
}

impl fmt::Display for OpcodeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpcodeCategory::DeepLearning => "Deep Learning",
            OpcodeCategory::LinearAlgebra => "Linear Algebra",
            OpcodeCategory::Sort => "Sort",
            OpcodeCategory::Count => "Count",
            OpcodeCategory::Reduction => "Reduction",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(op.mnemonic().parse::<Opcode>().unwrap(), op);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("matmul".parse::<Opcode>().unwrap(), Opcode::MatMul);
        assert!("Bogus".parse::<Opcode>().is_err());
    }

    #[test]
    fn table3_categories() {
        assert_eq!(Opcode::Cv2D.category(), OpcodeCategory::DeepLearning);
        assert_eq!(Opcode::MatMul.category(), OpcodeCategory::LinearAlgebra);
        assert_eq!(Opcode::Sort1D.category(), OpcodeCategory::Sort);
        assert_eq!(Opcode::Count1D.category(), OpcodeCategory::Count);
        assert_eq!(Opcode::Add1D.category(), OpcodeCategory::Reduction);
        assert_eq!(Opcode::Merge1D.category(), OpcodeCategory::Reduction);
    }

    #[test]
    fn reductions_prefer_lfu() {
        assert!(Opcode::HSum1D.prefers_lfu());
        assert!(!Opcode::Cv2D.prefers_lfu());
    }
}
