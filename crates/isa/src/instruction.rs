use cf_tensor::{Region, Shape};

use crate::{infer_output_shapes, IsaError, OpParams, Opcode};

/// A FISA instruction: the paper's `I ⟨O, P, G⟩` tuple.
///
/// All operand regions address the *enclosing* memory (the parent node's
/// local storage, or the root external memory for top-level programs); FISA
/// exposes no internal storage to the programmer (§4, "implicit data
/// movement"). The granularity indicator `G` is carried by the operand
/// shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation `O`.
    pub op: Opcode,
    /// The attribute parameters `P`.
    pub params: OpParams,
    /// Input operand regions, in the order defined by the opcode signature.
    pub inputs: Vec<Region>,
    /// Output operand regions (one for most opcodes; two for key/payload
    /// sorts and merges).
    pub outputs: Vec<Region>,
}

impl Instruction {
    /// Builds and validates an instruction.
    ///
    /// # Errors
    ///
    /// Returns the shape-inference error when the operand shapes are not a
    /// legal signature for `op`, or [`IsaError::BadOutputArity`] /
    /// [`IsaError::BadOperandShape`] when outputs disagree with the
    /// inferred result shapes.
    pub fn new(
        op: Opcode,
        params: OpParams,
        inputs: Vec<Region>,
        outputs: Vec<Region>,
    ) -> Result<Self, IsaError> {
        let inst = Instruction { op, params, inputs, outputs };
        inst.validate()?;
        Ok(inst)
    }

    /// Re-checks the shape legality of the instruction (used after the
    /// decomposers rewrite operand regions).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Instruction::new`].
    pub fn validate(&self) -> Result<(), IsaError> {
        let in_shapes: Vec<Shape> = self.inputs.iter().map(|r| r.shape().clone()).collect();
        let expect = infer_output_shapes(self.op, &self.params, &in_shapes)?;
        if expect.len() != self.outputs.len() {
            return Err(IsaError::BadOutputArity {
                op: self.op,
                expected: expect.len(),
                actual: self.outputs.len(),
            });
        }
        for (i, (want, have)) in expect.iter().zip(&self.outputs).enumerate() {
            if want != have.shape() {
                return Err(IsaError::BadOperandShape {
                    op: self.op,
                    detail: format!(
                        "output {i} has shape {}, semantics require {want}",
                        have.shape()
                    ),
                });
            }
        }
        Ok(())
    }

    /// The granularity indicator: total number of operand elements. The
    /// partial order on granularities (paper §3.2) is the usual order on
    /// this quantity for a fixed opcode.
    pub fn granularity(&self) -> u64 {
        self.inputs.iter().chain(&self.outputs).map(Region::numel).sum()
    }

    /// Total bytes of all operands — the footprint the sequential
    /// decomposer compares against a node's memory segment capacity.
    pub fn operand_bytes(&self) -> u64 {
        self.inputs.iter().chain(&self.outputs).map(Region::bytes).sum()
    }

    /// Whether `self` must wait for `earlier` (read-after-write: one of our
    /// inputs may overlap one of its outputs). The demotion decoder stalls
    /// the pipeline on this condition (§3.3).
    pub fn raw_depends_on(&self, earlier: &Instruction) -> bool {
        self.inputs.iter().any(|r| earlier.outputs.iter().any(|w| r.may_overlap(w)))
    }

    /// Whether `self` writes storage that `earlier` reads or writes
    /// (WAR/WAW). Together with [`Instruction::raw_depends_on`] this decides
    /// whether pipeline concatenating may pre-assign `self` (§3.6).
    pub fn output_conflicts_with(&self, earlier: &Instruction) -> bool {
        self.outputs.iter().any(|w| {
            earlier.inputs.iter().any(|r| w.may_overlap(r))
                || earlier.outputs.iter().any(|o| w.may_overlap(o))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_tensor::Region;

    fn reg(offset: u64, dims: &[usize]) -> Region {
        Region::contiguous(offset, Shape::new(dims.to_vec()))
    }

    #[test]
    fn valid_matmul() {
        let i = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[2, 3]), reg(6, &[3, 4])],
            vec![reg(18, &[2, 4])],
        )
        .unwrap();
        assert_eq!(i.granularity(), 6 + 12 + 8);
        assert_eq!(i.operand_bytes(), 26 * 4);
    }

    #[test]
    fn wrong_output_shape_rejected() {
        let e = Instruction::new(
            Opcode::MatMul,
            OpParams::None,
            vec![reg(0, &[2, 3]), reg(6, &[3, 4])],
            vec![reg(18, &[4, 2])],
        );
        assert!(matches!(e, Err(IsaError::BadOperandShape { .. })));
    }

    #[test]
    fn wrong_output_count_rejected() {
        let e = Instruction::new(
            Opcode::Add1D,
            OpParams::None,
            vec![reg(0, &[4]), reg(4, &[4])],
            vec![reg(8, &[4]), reg(12, &[4])],
        );
        assert!(matches!(e, Err(IsaError::BadOutputArity { .. })));
    }

    #[test]
    fn raw_dependency_detection() {
        let producer = Instruction::new(
            Opcode::Add1D,
            OpParams::None,
            vec![reg(0, &[4]), reg(4, &[4])],
            vec![reg(8, &[4])],
        )
        .unwrap();
        let consumer = Instruction::new(
            Opcode::HSum1D,
            OpParams::None,
            vec![reg(8, &[4])],
            vec![reg(12, &[1])],
        )
        .unwrap();
        let unrelated = Instruction::new(
            Opcode::HSum1D,
            OpParams::None,
            vec![reg(0, &[4])],
            vec![reg(13, &[1])],
        )
        .unwrap();
        assert!(consumer.raw_depends_on(&producer));
        assert!(!unrelated.raw_depends_on(&producer));
        assert!(consumer.output_conflicts_with(&consumer));
    }
}
