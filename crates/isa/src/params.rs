use std::fmt;

/// Zero padding before/after one spatial axis.
///
/// User programs normally use symmetric padding, but the fractal
/// decomposers produce *asymmetric* padding on spatial sub-instructions
/// (only the border pieces keep the original padding), so padding is a
/// `(before, after)` pair throughout the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pad {
    /// Zeros prepended before the axis.
    pub before: usize,
    /// Zeros appended after the axis.
    pub after: usize,
}

impl Pad {
    /// Symmetric padding of `p` on both sides.
    pub fn same(p: usize) -> Self {
        Pad { before: p, after: p }
    }

    /// Total padding on the axis.
    pub fn total(self) -> usize {
        self.before + self.after
    }
}

/// Convolution attributes (shared by [`crate::Opcode::Cv2D`] and
/// [`crate::Opcode::Cv3D`]).
///
/// `pads` is indexed by spatial axis: `[h, w, _]` for 2-D (third entry
/// unused and zero), `[d, h, w]` for 3-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Spatial stride (same on every spatial axis).
    pub stride: usize,
    /// Per-axis `(before, after)` zero padding.
    pub pads: [Pad; 3],
}

impl ConvParams {
    /// Symmetric padding `pad` on every spatial axis.
    pub fn same(stride: usize, pad: usize) -> Self {
        ConvParams { stride, pads: [Pad::same(pad); 3] }
    }
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams::same(1, 0)
    }
}

/// Pooling attributes for `Max2D`/`Min2D`/`Avg2D`. `pads` is `[h, w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Pooling window height.
    pub kh: usize,
    /// Pooling window width.
    pub kw: usize,
    /// Window stride.
    pub stride: usize,
    /// Per-axis `(before, after)` zero padding.
    pub pads: [Pad; 2],
}

impl PoolParams {
    /// A square window of side `k` and stride `stride`, symmetric padding.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        PoolParams { kh: k, kw: k, stride, pads: [Pad::same(pad); 2] }
    }
}

impl Default for PoolParams {
    fn default() -> Self {
        PoolParams::square(2, 2, 0)
    }
}

/// Local-response-normalisation attributes (AlexNet §3.3 definition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrnParams {
    /// Number of neighbouring channels in the window.
    pub size: usize,
    /// Scale.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Bias.
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        LrnParams { size: 5, alpha: 1e-4, beta: 0.75, k: 2.0 }
    }
}

/// Activation function selector for `Act1D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActKind {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl fmt::Display for ActKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActKind::Relu => "relu",
            ActKind::Sigmoid => "sigmoid",
            ActKind::Tanh => "tanh",
        };
        f.write_str(s)
    }
}

/// Attributes for `Count1D`: count elements within `tol` of `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountParams {
    /// The value to count.
    pub value: f32,
    /// Absolute tolerance of the equality test.
    pub tol: f32,
}

impl Default for CountParams {
    fn default() -> Self {
        CountParams { value: 0.0, tol: 1e-6 }
    }
}

/// The attribute parameters `P` of a FISA instruction.
///
/// `None` is used by the many opcodes whose behaviour is fully determined by
/// operand shapes (elementwise ops, `MatMul`, `Sort1D`, …).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum OpParams {
    /// No attributes.
    #[default]
    None,
    /// Convolution attributes.
    Conv(ConvParams),
    /// Pooling attributes.
    Pool(PoolParams),
    /// LRN attributes.
    Lrn(LrnParams),
    /// Activation attributes.
    Act(ActKind),
    /// Count attributes.
    Count(CountParams),
}

impl OpParams {
    /// The convolution attributes, or defaults if absent.
    ///
    /// # Panics
    ///
    /// Panics when called on parameters of a non-convolution kind other
    /// than [`OpParams::None`]; that indicates a malformed instruction that
    /// validation should have rejected.
    pub fn conv(&self) -> ConvParams {
        match self {
            OpParams::Conv(p) => *p,
            OpParams::None => ConvParams::default(),
            other => panic!("expected convolution params, found {other:?}"),
        }
    }

    /// The pooling attributes, or defaults if absent.
    ///
    /// # Panics
    ///
    /// Panics on a non-pooling parameter kind other than [`OpParams::None`].
    pub fn pool(&self) -> PoolParams {
        match self {
            OpParams::Pool(p) => *p,
            OpParams::None => PoolParams::default(),
            other => panic!("expected pooling params, found {other:?}"),
        }
    }

    /// The LRN attributes, or defaults if absent.
    ///
    /// # Panics
    ///
    /// Panics on a non-LRN parameter kind other than [`OpParams::None`].
    pub fn lrn(&self) -> LrnParams {
        match self {
            OpParams::Lrn(p) => *p,
            OpParams::None => LrnParams::default(),
            other => panic!("expected LRN params, found {other:?}"),
        }
    }

    /// The activation kind, or default (ReLU) if absent.
    ///
    /// # Panics
    ///
    /// Panics on a non-activation parameter kind other than
    /// [`OpParams::None`].
    pub fn act(&self) -> ActKind {
        match self {
            OpParams::Act(k) => *k,
            OpParams::None => ActKind::default(),
            other => panic!("expected activation params, found {other:?}"),
        }
    }

    /// A stable, injective integer encoding of the parameters, suitable
    /// for hashing and exact equality in memoization keys. Float fields
    /// are compared by bit pattern, so two parameter values encode
    /// equally if and only if they are byte-identical.
    pub fn stable_bits(&self) -> [u64; 8] {
        match self {
            OpParams::None => [0; 8],
            OpParams::Conv(c) => [
                1,
                c.stride as u64,
                c.pads[0].before as u64,
                c.pads[0].after as u64,
                c.pads[1].before as u64,
                c.pads[1].after as u64,
                c.pads[2].before as u64,
                c.pads[2].after as u64,
            ],
            OpParams::Pool(p) => [
                2,
                p.kh as u64,
                p.kw as u64,
                p.stride as u64,
                p.pads[0].before as u64,
                p.pads[0].after as u64,
                p.pads[1].before as u64,
                p.pads[1].after as u64,
            ],
            OpParams::Lrn(l) => [
                3,
                l.size as u64,
                l.alpha.to_bits() as u64,
                l.beta.to_bits() as u64,
                l.k.to_bits() as u64,
                0,
                0,
                0,
            ],
            OpParams::Act(k) => [4, *k as u64, 0, 0, 0, 0, 0, 0],
            OpParams::Count(c) => {
                [5, c.value.to_bits() as u64, c.tol.to_bits() as u64, 0, 0, 0, 0, 0]
            }
        }
    }

    /// The count attributes, or defaults if absent.
    ///
    /// # Panics
    ///
    /// Panics on a non-count parameter kind other than [`OpParams::None`].
    pub fn count(&self) -> CountParams {
        match self {
            OpParams::Count(p) => *p,
            OpParams::None => CountParams::default(),
            other => panic!("expected count params, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert_eq!(ConvParams::default().stride, 1);
        assert_eq!(PoolParams::default().kh, 2);
        assert_eq!(ActKind::default(), ActKind::Relu);
    }

    #[test]
    fn accessors_accept_none() {
        let p = OpParams::None;
        assert_eq!(p.conv(), ConvParams::default());
        assert_eq!(p.pool(), PoolParams::default());
        assert_eq!(p.act(), ActKind::Relu);
    }

    #[test]
    #[should_panic(expected = "expected convolution params")]
    fn mismatched_accessor_panics() {
        let p = OpParams::Act(ActKind::Tanh);
        let _ = p.conv();
    }

    #[test]
    fn act_display() {
        assert_eq!(ActKind::Sigmoid.to_string(), "sigmoid");
    }
}
