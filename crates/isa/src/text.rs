//! Human-readable FISA assembly, in the spirit of the paper's Figure 11
//! inline-assembly listing.
//!
//! Format, one item per line (`;` starts a comment):
//!
//! ```text
//! .tensor samples [262144x512]
//! .tensor dist    [256x262144]
//! Euclidian1D queries, samples -> dist
//! Sort1D{} @0:[16], labels -> sorted, voted
//! Act1D{kind=relu} x -> y
//! ```
//!
//! Operands are symbol names, or raw regions `@offset:[shape]` (optionally
//! `@offset:[shape]:(strides)`).

use std::fmt::Write as _;

use cf_tensor::{Region, Shape};

use crate::{
    ActKind, ConvParams, CountParams, Instruction, IsaError, LrnParams, OpParams, Opcode,
    PoolParams, Program, ProgramBuilder,
};

/// Renders a program to FISA assembly text.
pub fn render_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, region) in p.symbols() {
        // Temporaries keep their %tN names; they are valid symbols too.
        let _ = writeln!(out, ".tensor {name} {}", region.shape());
    }
    for inst in p.instructions() {
        let _ = write!(out, "{}{}", inst.op.mnemonic(), render_params(&inst.params));
        let fmt_ops = |ops: &[Region], out: &mut String| {
            for (i, r) in ops.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match p.symbols().iter().find(|(_, s)| s == r) {
                    Some((name, _)) => out.push_str(name),
                    None => {
                        let _ = write!(out, "@{}:{}", r.offset(), r.shape());
                        if !r.is_contiguous() {
                            let _ = write!(
                                out,
                                ":({})",
                                r.strides()
                                    .iter()
                                    .map(|s| s.to_string())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            );
                        }
                    }
                }
            }
        };
        out.push(' ');
        fmt_ops(&inst.inputs, &mut out);
        out.push_str(" -> ");
        fmt_ops(&inst.outputs, &mut out);
        out.push('\n');
    }
    out
}

fn render_params(p: &OpParams) -> String {
    match p {
        OpParams::None => String::new(),
        OpParams::Conv(c) => format!("{{stride={},pads={}}}", c.stride, render_pads(&c.pads)),
        OpParams::Pool(q) => {
            format!("{{kh={},kw={},stride={},pads={}}}", q.kh, q.kw, q.stride, render_pads(&q.pads))
        }
        OpParams::Lrn(l) => {
            format!("{{size={},alpha={},beta={},k={}}}", l.size, l.alpha, l.beta, l.k)
        }
        OpParams::Act(k) => format!("{{kind={k}}}"),
        OpParams::Count(c) => format!("{{value={},tol={}}}", c.value, c.tol),
    }
}

fn render_pads(pads: &[crate::Pad]) -> String {
    pads.iter().map(|p| format!("{}:{}", p.before, p.after)).collect::<Vec<_>>().join("/")
}

/// Parses `b0:a0/b1:a1[/b2:a2]` (asymmetric) or a single integer
/// (symmetric on every axis).
fn parse_pads<const N: usize>(
    kv: &std::collections::HashMap<String, String>,
    line: usize,
) -> Result<[crate::Pad; N], IsaError> {
    if let Some(v) = kv.get("pad") {
        let p = v
            .parse::<usize>()
            .map_err(|_| IsaError::Parse { line, detail: format!("bad pad `{v}`") })?;
        return Ok([crate::Pad::same(p); N]);
    }
    let Some(v) = kv.get("pads") else {
        return Ok([crate::Pad::default(); N]);
    };
    let mut pads = [crate::Pad::default(); N];
    for (i, item) in v.split('/').enumerate() {
        if i >= N {
            return Err(IsaError::Parse { line, detail: format!("too many pad axes in `{v}`") });
        }
        let (b, a) = item
            .split_once(':')
            .ok_or_else(|| IsaError::Parse { line, detail: format!("bad pad item `{item}`") })?;
        pads[i] = crate::Pad {
            before: b
                .parse()
                .map_err(|_| IsaError::Parse { line, detail: format!("bad pad `{b}`") })?,
            after: a
                .parse()
                .map_err(|_| IsaError::Parse { line, detail: format!("bad pad `{a}`") })?,
        };
    }
    Ok(pads)
}

fn parse_shape(s: &str, line: usize) -> Result<Shape, IsaError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| IsaError::Parse { line, detail: format!("bad shape `{s}`") })?;
    let dims = inner
        .split('x')
        .map(|d| {
            d.trim()
                .parse::<usize>()
                .map_err(|_| IsaError::Parse { line, detail: format!("bad dimension `{d}`") })
        })
        .collect::<Result<Vec<_>, _>>()?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(IsaError::Parse { line, detail: format!("empty or zero shape `{s}`") });
    }
    // Reject element counts that would overflow downstream size maths
    // (offsets, byte counts) instead of wrapping.
    let mut numel: u64 = 1;
    for &d in &dims {
        numel = numel
            .checked_mul(d as u64)
            .filter(|&n| n <= u64::MAX / 8)
            .ok_or_else(|| IsaError::Parse { line, detail: format!("shape `{s}` overflows") })?;
    }
    Ok(Shape::new(dims))
}

fn parse_params(op: Opcode, body: &str, line: usize) -> Result<OpParams, IsaError> {
    let mut kv = std::collections::HashMap::new();
    for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| IsaError::Parse { line, detail: format!("bad parameter `{pair}`") })?;
        kv.insert(k.trim().to_string(), v.trim().to_string());
    }
    let get_usize = |kv: &std::collections::HashMap<String, String>, k: &str, d: usize| {
        kv.get(k).map_or(Ok(d), |v| {
            v.parse::<usize>()
                .map_err(|_| IsaError::Parse { line, detail: format!("bad integer `{v}`") })
        })
    };
    let get_f32 = |kv: &std::collections::HashMap<String, String>, k: &str, d: f32| {
        kv.get(k).map_or(Ok(d), |v| {
            v.parse::<f32>()
                .map_err(|_| IsaError::Parse { line, detail: format!("bad number `{v}`") })
        })
    };
    Ok(match op {
        Opcode::Cv2D | Opcode::Cv3D => OpParams::Conv(ConvParams {
            stride: get_usize(&kv, "stride", 1)?,
            pads: parse_pads::<3>(&kv, line)?,
        }),
        Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D => OpParams::Pool(PoolParams {
            kh: get_usize(&kv, "kh", 2)?,
            kw: get_usize(&kv, "kw", 2)?,
            stride: get_usize(&kv, "stride", 2)?,
            pads: parse_pads::<2>(&kv, line)?,
        }),
        Opcode::Lrn => OpParams::Lrn(LrnParams {
            size: get_usize(&kv, "size", 5)?,
            alpha: get_f32(&kv, "alpha", 1e-4)?,
            beta: get_f32(&kv, "beta", 0.75)?,
            k: get_f32(&kv, "k", 2.0)?,
        }),
        Opcode::Act1D => OpParams::Act(match kv.get("kind").map(String::as_str) {
            None | Some("relu") => ActKind::Relu,
            Some("sigmoid") => ActKind::Sigmoid,
            Some("tanh") => ActKind::Tanh,
            Some(other) => {
                return Err(IsaError::Parse {
                    line,
                    detail: format!("unknown activation `{other}`"),
                })
            }
        }),
        Opcode::Count1D => OpParams::Count(CountParams {
            value: get_f32(&kv, "value", 0.0)?,
            tol: get_f32(&kv, "tol", 1e-6)?,
        }),
        _ if kv.is_empty() => OpParams::None,
        _ => return Err(IsaError::Parse { line, detail: format!("{op} takes no parameters") }),
    })
}

/// Parses FISA assembly text back into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a line number for syntax problems and
/// instruction-validation errors for semantic ones.
pub fn parse_program(text: &str) -> Result<Program, IsaError> {
    let mut builder = ProgramBuilder::new();
    let mut handles = std::collections::HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split(';').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix(".tensor") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| IsaError::Parse { line, detail: "missing tensor name".into() })?;
            let shape = parse_shape(
                parts.next().ok_or_else(|| IsaError::Parse {
                    line,
                    detail: "missing tensor shape".into(),
                })?,
                line,
            )?;
            let h = builder.alloc(name, shape.dims().to_vec());
            handles.insert(name.to_string(), h);
            continue;
        }
        // Instruction line: `Op{params} in, in -> out, out`.
        let (lhs, rhs) = stmt
            .split_once("->")
            .ok_or_else(|| IsaError::Parse { line, detail: "missing `->`".into() })?;
        let lhs = lhs.trim();
        let (head, ins) = match lhs.find(char::is_whitespace) {
            Some(i) => (&lhs[..i], lhs[i..].trim()),
            None => (lhs, ""),
        };
        let (mnemonic, params_body) = match head.find('{') {
            Some(i) => {
                let body = head[i..]
                    .strip_prefix('{')
                    .and_then(|t| t.strip_suffix('}'))
                    .ok_or_else(|| IsaError::Parse { line, detail: "unclosed `{`".into() })?;
                (&head[..i], body)
            }
            None => (head, ""),
        };
        let op: Opcode = mnemonic.parse()?;
        let params = parse_params(op, params_body, line)?;
        let parse_ops = |list: &str| -> Result<Vec<TensorOrRegion>, IsaError> {
            list.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|tok| {
                    if let Some(body) = tok.strip_prefix('@') {
                        let mut segs = body.splitn(3, ':');
                        let off =
                            segs.next().and_then(|s| s.parse::<u64>().ok()).ok_or_else(|| {
                                IsaError::Parse { line, detail: format!("bad region `{tok}`") }
                            })?;
                        let shape = parse_shape(
                            segs.next().ok_or_else(|| IsaError::Parse {
                                line,
                                detail: format!("region `{tok}` missing shape"),
                            })?,
                            line,
                        )?;
                        let region = match segs.next() {
                            None => Region::contiguous(off, shape),
                            Some(s) => {
                                let inner = s
                                    .strip_prefix('(')
                                    .and_then(|t| t.strip_suffix(')'))
                                    .ok_or_else(|| IsaError::Parse {
                                    line,
                                    detail: format!("bad strides in `{tok}`"),
                                })?;
                                let strides = inner
                                    .split(',')
                                    .map(|d| {
                                        d.trim().parse::<u64>().map_err(|_| IsaError::Parse {
                                            line,
                                            detail: format!("bad stride `{d}`"),
                                        })
                                    })
                                    .collect::<Result<Vec<_>, _>>()?;
                                if strides.len() != shape.rank() {
                                    return Err(IsaError::Parse {
                                        line,
                                        detail: format!(
                                            "region `{tok}` has {} strides for rank {}",
                                            strides.len(),
                                            shape.rank()
                                        ),
                                    });
                                }
                                Region::strided(off, shape, strides)
                            }
                        };
                        Ok(TensorOrRegion::Region(region))
                    } else {
                        Ok(TensorOrRegion::Name(tok.to_string()))
                    }
                })
                .collect()
        };
        let resolve = |ops: Vec<TensorOrRegion>| -> Result<Vec<Region>, IsaError> {
            ops.into_iter()
                .map(|o| match o {
                    TensorOrRegion::Region(r) => Ok(r),
                    TensorOrRegion::Name(n) => {
                        handles.get(&n).map(|&h| builder.region(h).clone()).ok_or_else(|| {
                            IsaError::Parse { line, detail: format!("unknown tensor `{n}`") }
                        })
                    }
                })
                .collect()
        };
        let inputs = resolve(parse_ops(ins)?)?;
        let outputs = resolve(parse_ops(rhs.trim())?)?;
        // Bypass the handle-based emit: operands may be raw regions.
        let inst = Instruction::new(op, params, inputs, outputs)?;
        builder_push(&mut builder, inst);
    }
    Ok(builder.build())
}

enum TensorOrRegion {
    Name(String),
    Region(Region),
}

// The builder API is handle-based; parsing needs to append an already-built
// instruction. Kept as a free function so `ProgramBuilder`'s public surface
// stays handle-only.
fn builder_push(b: &mut ProgramBuilder, inst: Instruction) {
    b.push_raw(inst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_program() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![64]);
        let y = b.alloc("y", vec![64]);
        let z = b.alloc("z", vec![64]);
        b.emit(Opcode::Add1D, [x, y], [z]).unwrap();
        b.emit_with(Opcode::Act1D, OpParams::Act(ActKind::Tanh), [z], [z]).unwrap();
        let p = b.build();
        let text = render_program(&p);
        let q = parse_program(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_params_and_regions() {
        let text = "\
; a convolution over raw regions
.tensor img [1x8x8x3]
.tensor w [3x3x3x4]
Cv2D{stride=1,pad=1} img, w -> @204:[1x8x8x4]
Count1D{value=2,tol=0.5} @0:[16] -> @500:[1]
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.instructions().len(), 2);
        let r = parse_program(&render_program(&p)).unwrap();
        assert_eq!(p.instructions(), r.instructions());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = parse_program(".tensor x [4]\nBogus x -> x\n").unwrap_err();
        match e {
            IsaError::UnknownOpcode(s) => assert_eq!(s, "Bogus"),
            other => panic!("unexpected error {other}"),
        }
        let e = parse_program("Add1D x, y ->\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 1, .. }));
    }

    #[test]
    fn strided_region_roundtrip() {
        let text = ".tensor o [1]\nHSum1D @2:[3]:(4) -> o\n";
        let p = parse_program(text).unwrap();
        let inst = &p.instructions()[0];
        assert_eq!(inst.inputs[0].strides(), &[4]);
        let q = parse_program(&render_program(&p)).unwrap();
        assert_eq!(p.instructions(), q.instructions());
    }

    #[test]
    fn stride_rank_mismatch_is_an_error_not_a_panic() {
        let e = parse_program(".tensor o [1]\nHSum1D @0:[4x4]:(4) -> o\n").unwrap_err();
        match e {
            IsaError::Parse { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("strides"), "{detail}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn overflowing_shape_is_an_error_not_a_panic() {
        let e = parse_program(".tensor x [9999999999999x9999999999999]\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 1, .. }), "{e}");
    }
}
