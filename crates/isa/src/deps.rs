//! Program dataflow analysis.
//!
//! The pipeline-concatenating optimisation (§3.6) pre-assigns the next
//! FISA cycle's sub-instructions *"except some instructions which can not
//! be pre-assigned because of the possible data dependency violations"* —
//! the paper measures 93.11 % of ResNet-152 instructions pre-assignable.
//! This module computes exactly that: the RAW/WAR/WAW dependence structure
//! of a program, the pre-assignable fraction, and the dependence-depth
//! critical path.

use crate::{Instruction, Program};

/// Dependence kind between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: the later instruction consumes the earlier's
    /// output (pipeline forwarding applies).
    Raw,
    /// Write-after-read or write-after-write on overlapping storage.
    War,
}

/// One dependence edge `from → to` (instruction indices, `from < to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer (or earlier accessor) index.
    pub from: usize,
    /// Consumer (or later writer) index.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
}

/// Dataflow analysis of a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepGraph {
    /// All dependence edges, ordered by `(to, from)`.
    pub edges: Vec<DepEdge>,
    /// Per-instruction dependence depth (longest chain of RAW edges ending
    /// at the instruction; 0 for sources).
    pub raw_depth: Vec<usize>,
}

impl DepGraph {
    /// Builds the dependence graph of `program`.
    pub fn build(program: &Program) -> Self {
        let insts = program.instructions();
        let mut edges = Vec::new();
        let mut raw_depth = vec![0usize; insts.len()];
        for (j, later) in insts.iter().enumerate() {
            for (i, earlier) in insts.iter().enumerate().take(j) {
                if later.raw_depends_on(earlier) {
                    edges.push(DepEdge { from: i, to: j, kind: DepKind::Raw });
                    raw_depth[j] = raw_depth[j].max(raw_depth[i] + 1);
                } else if later.output_conflicts_with(earlier) {
                    edges.push(DepEdge { from: i, to: j, kind: DepKind::War });
                }
            }
        }
        DepGraph { edges, raw_depth }
    }

    /// Longest RAW chain in the program (the dependence critical path, in
    /// instructions). An empty program has depth 0.
    pub fn critical_path(&self) -> usize {
        self.raw_depth.iter().copied().max().map(|d| d + 1).unwrap_or(0)
    }

    /// Whether instruction `j` can be pre-assigned one FISA cycle early
    /// (§3.6: no dependence on its immediate predecessor).
    pub fn pre_assignable(&self, j: usize) -> bool {
        j == 0 || !self.edges.iter().any(|e| e.to == j && e.from + 1 == j)
    }

    /// Fraction of instructions that pipeline concatenating can
    /// pre-assign — the paper's 93.11 % metric for ResNet-152.
    pub fn pre_assignable_fraction(&self, n_insts: usize) -> f64 {
        if n_insts == 0 {
            return 1.0;
        }
        let ok = (0..n_insts).filter(|&j| self.pre_assignable(j)).count();
        ok as f64 / n_insts as f64
    }

    /// Available instruction-level parallelism: instructions divided by the
    /// critical path.
    pub fn parallelism(&self, n_insts: usize) -> f64 {
        let cp = self.critical_path().max(1);
        n_insts as f64 / cp as f64
    }
}

/// Convenience: whether two instructions are independent (no hazard either
/// way) — they may execute concurrently on sibling FFUs.
pub fn independent(a: &Instruction, b: &Instruction) -> bool {
    !a.raw_depends_on(b)
        && !b.raw_depends_on(a)
        && !a.output_conflicts_with(b)
        && !b.output_conflicts_with(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, ProgramBuilder};

    #[test]
    fn chain_has_full_depth() {
        // x -> y -> z: every instruction depends on the previous one.
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![8]);
        let y = b.apply(Opcode::Act1D, [x]).unwrap();
        let z = b.apply(Opcode::Act1D, [y[0]]).unwrap();
        b.apply(Opcode::Act1D, [z[0]]).unwrap();
        let p = b.build();
        let g = DepGraph::build(&p);
        assert_eq!(g.critical_path(), 3);
        assert!((g.parallelism(p.instructions().len()) - 1.0).abs() < 1e-9);
        assert!(!g.pre_assignable(1));
        assert!(!g.pre_assignable(2));
    }

    #[test]
    fn independent_instructions_are_fully_preassignable() {
        let mut b = ProgramBuilder::new();
        for i in 0..6 {
            let x = b.alloc(format!("x{i}"), vec![16]);
            let y = b.alloc(format!("y{i}"), vec![16]);
            let z = b.alloc(format!("z{i}"), vec![16]);
            b.emit(Opcode::Add1D, [x, y], [z]).unwrap();
        }
        let p = b.build();
        let g = DepGraph::build(&p);
        assert_eq!(g.critical_path(), 1);
        assert_eq!(g.pre_assignable_fraction(6), 1.0);
        assert!(g.edges.is_empty());
        let insts = p.instructions();
        assert!(independent(&insts[0], &insts[5]));
    }

    #[test]
    fn war_detected_on_inplace_updates() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![8]);
        let y = b.alloc("y", vec![8]);
        // y = x + y (reads y), then y = x * y (writes y again): WAR+RAW.
        b.emit(Opcode::Add1D, [x, y], [y]).unwrap();
        b.emit(Opcode::Mul1D, [x, y], [y]).unwrap();
        let p = b.build();
        let g = DepGraph::build(&p);
        assert!(g.edges.iter().any(|e| e.kind == DepKind::Raw));
        assert!(!g.pre_assignable(1));
    }

    #[test]
    fn resnet_style_interleaving_is_mostly_preassignable() {
        // Alternating independent streams: every other instruction touches
        // a different buffer set, like double-buffered layers.
        let mut b = ProgramBuilder::new();
        let mut streams = Vec::new();
        for i in 0..2 {
            let x = b.alloc(format!("s{i}"), vec![64]);
            streams.push(x);
        }
        for step in 0..10 {
            let s = streams[step % 2];
            b.emit(Opcode::Act1D, [s], [s]).unwrap();
        }
        let p = b.build();
        let g = DepGraph::build(&p);
        // Each instruction depends on the one two back, never the previous.
        assert_eq!(g.pre_assignable_fraction(p.instructions().len()), 1.0);
        assert_eq!(g.critical_path(), 5);
    }
}
