//! Output-shape inference for every FISA opcode.
//!
//! Shape inference defines the *semantic signatures* of the ISA: the
//! instruction validator, the program builder and the fractal decomposers
//! all derive legality from these rules.

use cf_tensor::Shape;

use crate::{IsaError, OpParams, Opcode};

fn bad(op: Opcode, detail: impl Into<String>) -> IsaError {
    IsaError::BadOperandShape { op, detail: detail.into() }
}

fn arity(op: Opcode, inputs: &[Shape], expected: &'static [usize]) -> Result<(), IsaError> {
    if expected.contains(&inputs.len()) {
        Ok(())
    } else {
        Err(IsaError::BadInputArity { op, expected, actual: inputs.len() })
    }
}

/// Output extent of one spatial convolution/pooling axis.
///
/// # Errors
///
/// Returns an error when the (padded) input is smaller than the kernel or
/// the stride is zero.
pub(crate) fn conv_out_extent(
    op: Opcode,
    input: usize,
    kernel: usize,
    stride: usize,
    pad: crate::Pad,
) -> Result<usize, IsaError> {
    if stride == 0 {
        return Err(bad(op, "stride must be positive"));
    }
    let padded = input + pad.total();
    if padded < kernel {
        return Err(bad(op, format!("kernel {kernel} exceeds padded input {padded}")));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Infers the output shapes of an instruction from its opcode, parameters
/// and input shapes.
///
/// # Errors
///
/// Returns [`IsaError::BadInputArity`] or [`IsaError::BadOperandShape`] when
/// the inputs are not a legal signature for the opcode.
pub fn infer_output_shapes(
    op: Opcode,
    params: &OpParams,
    inputs: &[Shape],
) -> Result<Vec<Shape>, IsaError> {
    match op {
        Opcode::Cv2D => {
            arity(op, inputs, &[2])?;
            let (x, w) = (&inputs[0], &inputs[1]);
            if x.rank() != 4 || w.rank() != 4 {
                return Err(bad(
                    op,
                    format!("need input [N,H,W,Ci] and weight [Kh,Kw,Ci,Co], got {x} and {w}"),
                ));
            }
            if x.dim(3) != w.dim(2) {
                return Err(bad(
                    op,
                    format!("channel mismatch: input Ci={} weight Ci={}", x.dim(3), w.dim(2)),
                ));
            }
            let p = params.conv();
            let ho = conv_out_extent(op, x.dim(1), w.dim(0), p.stride, p.pads[0])?;
            let wo = conv_out_extent(op, x.dim(2), w.dim(1), p.stride, p.pads[1])?;
            Ok(vec![Shape::new(vec![x.dim(0), ho, wo, w.dim(3)])])
        }
        Opcode::Cv3D => {
            arity(op, inputs, &[2])?;
            let (x, w) = (&inputs[0], &inputs[1]);
            if x.rank() != 5 || w.rank() != 5 {
                return Err(bad(
                    op,
                    format!("need input [N,D,H,W,Ci] and weight [Kd,Kh,Kw,Ci,Co], got {x} and {w}"),
                ));
            }
            if x.dim(4) != w.dim(3) {
                return Err(bad(op, "channel mismatch"));
            }
            let p = params.conv();
            let dd = conv_out_extent(op, x.dim(1), w.dim(0), p.stride, p.pads[0])?;
            let ho = conv_out_extent(op, x.dim(2), w.dim(1), p.stride, p.pads[1])?;
            let wo = conv_out_extent(op, x.dim(3), w.dim(2), p.stride, p.pads[2])?;
            Ok(vec![Shape::new(vec![x.dim(0), dd, ho, wo, w.dim(4)])])
        }
        Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D => {
            arity(op, inputs, &[1])?;
            let x = &inputs[0];
            if x.rank() != 4 {
                return Err(bad(op, format!("need input [N,H,W,C], got {x}")));
            }
            let p = params.pool();
            let ho = conv_out_extent(op, x.dim(1), p.kh, p.stride, p.pads[0])?;
            let wo = conv_out_extent(op, x.dim(2), p.kw, p.stride, p.pads[1])?;
            Ok(vec![Shape::new(vec![x.dim(0), ho, wo, x.dim(3)])])
        }
        Opcode::Lrn => {
            arity(op, inputs, &[1])?;
            let x = &inputs[0];
            if x.rank() != 4 {
                return Err(bad(op, format!("need input [N,H,W,C], got {x}")));
            }
            Ok(vec![x.clone()])
        }
        Opcode::MatMul => {
            arity(op, inputs, &[2])?;
            let (a, b) = (&inputs[0], &inputs[1]);
            if a.rank() != 2 || b.rank() != 2 {
                return Err(bad(op, format!("need matrices, got {a} and {b}")));
            }
            if a.dim(1) != b.dim(0) {
                return Err(bad(
                    op,
                    format!("inner dimensions differ: {} vs {}", a.dim(1), b.dim(0)),
                ));
            }
            Ok(vec![Shape::new(vec![a.dim(0), b.dim(1)])])
        }
        Opcode::Euclidian1D => {
            arity(op, inputs, &[2])?;
            let (x, y) = (&inputs[0], &inputs[1]);
            if x.rank() != 2 || y.rank() != 2 {
                return Err(bad(op, format!("need [n,d] and [m,d], got {x} and {y}")));
            }
            if x.dim(1) != y.dim(1) {
                return Err(bad(op, "dimension (d) mismatch"));
            }
            Ok(vec![Shape::new(vec![x.dim(0), y.dim(0)])])
        }
        Opcode::Sort1D => {
            arity(op, inputs, &[1, 2])?;
            let k = &inputs[0];
            if k.rank() != 1 {
                return Err(bad(op, "keys must be rank-1"));
            }
            if inputs.len() == 2 && inputs[1] != *k {
                return Err(bad(op, "payload must match key shape"));
            }
            Ok(inputs.to_vec())
        }
        Opcode::Merge1D => {
            arity(op, inputs, &[2, 4])?;
            let (a, b) = (&inputs[0], &inputs[1]);
            if a.rank() != 1 || b.rank() != 1 {
                return Err(bad(op, "merge inputs must be rank-1"));
            }
            let merged = Shape::new(vec![a.dim(0) + b.dim(0)]);
            if inputs.len() == 4 {
                if inputs[2] != *a || inputs[3] != *b {
                    return Err(bad(op, "payloads must match key shapes"));
                }
                Ok(vec![merged.clone(), merged])
            } else {
                Ok(vec![merged])
            }
        }
        Opcode::Count1D => {
            arity(op, inputs, &[1])?;
            Ok(vec![Shape::scalar()])
        }
        Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D => {
            arity(op, inputs, &[2])?;
            if inputs[0] != inputs[1] {
                return Err(bad(
                    op,
                    format!("elementwise operands differ: {} vs {}", inputs[0], inputs[1]),
                ));
            }
            Ok(vec![inputs[0].clone()])
        }
        Opcode::Act1D => {
            arity(op, inputs, &[1])?;
            Ok(vec![inputs[0].clone()])
        }
        Opcode::HSum1D | Opcode::HProd1D => {
            arity(op, inputs, &[1])?;
            Ok(vec![Shape::scalar()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvParams;

    fn s(d: &[usize]) -> Shape {
        Shape::new(d.to_vec())
    }

    #[test]
    fn conv2d_shape() {
        let out = infer_output_shapes(
            Opcode::Cv2D,
            &OpParams::Conv(ConvParams::same(2, 1)),
            &[s(&[1, 8, 8, 3]), s(&[3, 3, 3, 16])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 4, 4, 16])]);
    }

    #[test]
    fn conv2d_channel_mismatch() {
        let e = infer_output_shapes(
            Opcode::Cv2D,
            &OpParams::None,
            &[s(&[1, 8, 8, 3]), s(&[3, 3, 4, 16])],
        );
        assert!(matches!(e, Err(IsaError::BadOperandShape { .. })));
    }

    #[test]
    fn matmul_shape() {
        let out = infer_output_shapes(Opcode::MatMul, &OpParams::None, &[s(&[4, 6]), s(&[6, 8])])
            .unwrap();
        assert_eq!(out, vec![s(&[4, 8])]);
        assert!(infer_output_shapes(Opcode::MatMul, &OpParams::None, &[s(&[4, 6]), s(&[5, 8])])
            .is_err());
    }

    #[test]
    fn sort_with_payload() {
        let out =
            infer_output_shapes(Opcode::Sort1D, &OpParams::None, &[s(&[9]), s(&[9])]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(infer_output_shapes(Opcode::Sort1D, &OpParams::None, &[s(&[9]), s(&[8])]).is_err());
    }

    #[test]
    fn merge_concatenates() {
        let out =
            infer_output_shapes(Opcode::Merge1D, &OpParams::None, &[s(&[3]), s(&[5])]).unwrap();
        assert_eq!(out, vec![s(&[8])]);
    }

    #[test]
    fn horizontal_ops_scalar() {
        for op in [Opcode::HSum1D, Opcode::HProd1D, Opcode::Count1D] {
            let out = infer_output_shapes(op, &OpParams::None, &[s(&[100])]).unwrap();
            assert_eq!(out, vec![Shape::scalar()]);
        }
    }

    #[test]
    fn eltwise_requires_same_shape() {
        assert!(
            infer_output_shapes(Opcode::Add1D, &OpParams::None, &[s(&[4]), s(&[4, 1])]).is_err()
        );
    }

    #[test]
    fn pooling_shape() {
        let out = infer_output_shapes(Opcode::Max2D, &OpParams::None, &[s(&[2, 8, 8, 5])]).unwrap();
        assert_eq!(out, vec![s(&[2, 4, 4, 5])]);
    }

    #[test]
    fn bad_arity_reported() {
        let e = infer_output_shapes(Opcode::MatMul, &OpParams::None, &[s(&[4, 6])]);
        assert!(matches!(e, Err(IsaError::BadInputArity { actual: 1, .. })));
    }

    #[test]
    fn cv3d_shape() {
        let out = infer_output_shapes(
            Opcode::Cv3D,
            &OpParams::None,
            &[s(&[1, 4, 8, 8, 3]), s(&[2, 3, 3, 3, 7])],
        )
        .unwrap();
        assert_eq!(out, vec![s(&[1, 3, 6, 6, 7])]);
    }
}
