use cf_tensor::fingerprint::{StableHash, StableHasher};
use cf_tensor::{Region, Shape};

use crate::{infer_output_shapes, Instruction, IsaError, OpParams, Opcode};

/// A handle to a named tensor in a program's external memory.
///
/// Handles are cheap copies; resolve them to [`Region`]s through the
/// [`ProgramBuilder`] (or the finished [`Program`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorHandle(usize);

/// A complete FISA program: an instruction sequence plus the external-memory
/// layout of its named tensors.
///
/// Programs carry no hardware information whatsoever (§4 "hardware
/// transparency"): the same `Program` value is executed by any machine
/// configuration in `cf-core`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    symbols: Vec<(String, Region)>,
    extern_elems: u64,
}

impl Program {
    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Named tensors in external memory, in declaration order.
    pub fn symbols(&self) -> &[(String, Region)] {
        &self.symbols
    }

    /// Looks up a named tensor's region.
    pub fn symbol(&self, name: &str) -> Option<&Region> {
        self.symbols.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Number of `f32` elements of external memory the program requires.
    pub fn extern_elems(&self) -> u64 {
        self.extern_elems
    }

    /// A stable 64-bit content hash of the program: instructions (opcode,
    /// parameters, operand regions), symbol table and external footprint.
    ///
    /// Two `Program` values compare equal **iff** planning and execution
    /// treat them identically, and the hash is a pure function of that
    /// content — stable across processes, platforms and Rust releases
    /// (FNV-1a; see [`cf_tensor::fingerprint`]). `cf-runtime` uses it as
    /// the program half of its plan/report cache key.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.instructions.len());
        for inst in &self.instructions {
            hash_instruction(inst, &mut h);
        }
        h.write_usize(self.symbols.len());
        for (name, region) in &self.symbols {
            h.write_str(name);
            region.stable_hash(&mut h);
        }
        h.write_u64(self.extern_elems);
        h.finish()
    }

    /// Total useful arithmetic work of the program in scalar operations,
    /// as estimated by `cost_fn` per instruction. (The cost model itself
    /// lives in `cf-ops`; this is a convenience fold.)
    pub fn total_cost(&self, mut cost_fn: impl FnMut(&Instruction) -> u64) -> u64 {
        self.instructions.iter().map(&mut cost_fn).sum()
    }
}

fn hash_instruction(inst: &Instruction, h: &mut StableHasher) {
    // The opcode's debug name is its canonical spelling (unit variants).
    h.write_str(&format!("{:?}", inst.op));
    hash_params(&inst.params, h);
    h.write_usize(inst.inputs.len());
    for r in &inst.inputs {
        r.stable_hash(h);
    }
    h.write_usize(inst.outputs.len());
    for r in &inst.outputs {
        r.stable_hash(h);
    }
}

fn hash_params(params: &OpParams, h: &mut StableHasher) {
    match params {
        OpParams::None => h.write_u8(0),
        OpParams::Conv(p) => {
            h.write_u8(1);
            h.write_usize(p.stride);
            for pad in &p.pads {
                h.write_usize(pad.before);
                h.write_usize(pad.after);
            }
        }
        OpParams::Pool(p) => {
            h.write_u8(2);
            h.write_usize(p.kh);
            h.write_usize(p.kw);
            h.write_usize(p.stride);
            for pad in &p.pads {
                h.write_usize(pad.before);
                h.write_usize(pad.after);
            }
        }
        OpParams::Lrn(p) => {
            h.write_u8(3);
            h.write_usize(p.size);
            h.write_f32(p.alpha);
            h.write_f32(p.beta);
            h.write_f32(p.k);
        }
        OpParams::Act(k) => {
            h.write_u8(4);
            h.write_str(&format!("{k:?}"));
        }
        OpParams::Count(p) => {
            h.write_u8(5);
            h.write_f32(p.value);
            h.write_f32(p.tol);
        }
    }
}

/// Incremental builder for [`Program`]s — the programmer-facing API used in
/// the paper's Figure 11 style of inline FISA assembly.
///
/// # Examples
///
/// ```
/// use cf_isa::{Opcode, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let a = b.alloc("a", vec![8, 8]);
/// let w = b.alloc("w", vec![8, 8]);
/// // `apply` allocates outputs with the inferred shapes.
/// let c = b.apply(Opcode::MatMul, [a, w])?;
/// assert_eq!(b.shape(c[0]).dims(), &[8, 8]);
/// # Ok::<(), cf_isa::IsaError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
    symbols: Vec<(String, Region)>,
    cursor: u64,
    temp_count: usize,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a tensor of `dims` in external memory and returns its
    /// handle. Tensors are laid out contiguously in declaration order.
    pub fn alloc(&mut self, name: impl Into<String>, dims: Vec<usize>) -> TensorHandle {
        let shape = Shape::new(dims);
        let region = Region::contiguous(self.cursor, shape);
        self.cursor += region.numel();
        self.symbols.push((name.into(), region));
        TensorHandle(self.symbols.len() - 1)
    }

    /// The region a handle resolves to.
    ///
    /// # Panics
    ///
    /// Panics if the handle comes from a different builder.
    pub fn region(&self, h: TensorHandle) -> &Region {
        &self.symbols[h.0].1
    }

    /// The shape of a handle's tensor.
    ///
    /// # Panics
    ///
    /// Panics if the handle comes from a different builder.
    pub fn shape(&self, h: TensorHandle) -> &Shape {
        self.symbols[h.0].1.shape()
    }

    /// Emits an instruction with default parameters.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Instruction::new`].
    pub fn emit(
        &mut self,
        op: Opcode,
        inputs: impl IntoIterator<Item = TensorHandle>,
        outputs: impl IntoIterator<Item = TensorHandle>,
    ) -> Result<(), IsaError> {
        self.emit_with(op, OpParams::None, inputs, outputs)
    }

    /// Emits an instruction with explicit parameters.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Instruction::new`].
    pub fn emit_with(
        &mut self,
        op: Opcode,
        params: OpParams,
        inputs: impl IntoIterator<Item = TensorHandle>,
        outputs: impl IntoIterator<Item = TensorHandle>,
    ) -> Result<(), IsaError> {
        let inputs = inputs.into_iter().map(|h| self.region(h).clone()).collect();
        let outputs = outputs.into_iter().map(|h| self.region(h).clone()).collect();
        self.instructions.push(Instruction::new(op, params, inputs, outputs)?);
        Ok(())
    }

    /// Emits an instruction whose output tensors are allocated
    /// automatically (named `%tN`) with the inferred shapes, returning the
    /// output handles. This mirrors how the paper's sample program chains
    /// primitives without declaring intermediates.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and validation errors.
    pub fn apply(
        &mut self,
        op: Opcode,
        inputs: impl IntoIterator<Item = TensorHandle>,
    ) -> Result<Vec<TensorHandle>, IsaError> {
        self.apply_with(op, OpParams::None, inputs)
    }

    /// [`ProgramBuilder::apply`] with explicit parameters.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and validation errors.
    pub fn apply_with(
        &mut self,
        op: Opcode,
        params: OpParams,
        inputs: impl IntoIterator<Item = TensorHandle>,
    ) -> Result<Vec<TensorHandle>, IsaError> {
        let in_handles: Vec<TensorHandle> = inputs.into_iter().collect();
        let in_shapes: Vec<Shape> = in_handles.iter().map(|&h| self.shape(h).clone()).collect();
        let out_shapes = infer_output_shapes(op, &params, &in_shapes)?;
        let out_handles: Vec<TensorHandle> = out_shapes
            .into_iter()
            .map(|s| {
                let name = format!("%t{}", self.temp_count);
                self.temp_count += 1;
                self.alloc(name, s.dims().to_vec())
            })
            .collect();
        self.emit_with(op, params, in_handles, out_handles.clone())?;
        Ok(out_handles)
    }

    /// Appends an already-validated instruction whose operands may be raw
    /// regions rather than declared symbols. Used by the assembly parser
    /// and by tests that need operand aliasing; the handle-based `emit`
    /// family is the idiomatic path.
    pub fn push_raw(&mut self, inst: Instruction) {
        // Grow the external footprint to cover any raw regions.
        for r in inst.inputs.iter().chain(&inst.outputs) {
            self.cursor = self.cursor.max(r.end() + 1);
        }
        self.instructions.push(inst);
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            instructions: self.instructions,
            symbols: self.symbols,
            extern_elems: self.cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_in_declaration_order() {
        let mut b = ProgramBuilder::new();
        let x = b.alloc("x", vec![10]);
        let y = b.alloc("y", vec![4, 4]);
        assert_eq!(b.region(x).offset(), 0);
        assert_eq!(b.region(y).offset(), 10);
        let p = b.build();
        assert_eq!(p.extern_elems(), 26);
        assert_eq!(p.symbol("y").unwrap().offset(), 10);
        assert!(p.symbol("z").is_none());
    }

    #[test]
    fn apply_allocates_inferred_outputs() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![3, 5]);
        let w = b.alloc("w", vec![5, 2]);
        let outs = b.apply(Opcode::MatMul, [a, w]).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(b.shape(outs[0]).dims(), &[3, 2]);
        let p = b.build();
        assert_eq!(p.instructions().len(), 1);
        assert_eq!(p.symbols().len(), 3);
    }

    #[test]
    fn emit_validates() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![3]);
        let c = b.alloc("c", vec![4]);
        assert!(b.emit(Opcode::Add1D, [a, a], [c]).is_err());
    }

    #[test]
    fn content_hash_tracks_program_identity() {
        let build = |act: bool| {
            let mut b = ProgramBuilder::new();
            let a = b.alloc("a", vec![8, 8]);
            let w = b.alloc("w", vec![8, 8]);
            let c = b.apply(Opcode::MatMul, [a, w]).unwrap();
            if act {
                b.apply(Opcode::Act1D, [c[0]]).unwrap();
            }
            b.build()
        };
        // Equal content ⇒ equal hash, in the same and across builders.
        assert_eq!(build(true).content_hash(), build(true).content_hash());
        // Different instruction streams ⇒ different hash.
        assert_ne!(build(true).content_hash(), build(false).content_hash());
        // A parameter change alone changes the hash.
        let with_act = |kind| {
            let mut b = ProgramBuilder::new();
            let x = b.alloc("x", vec![16]);
            b.emit_with(Opcode::Act1D, OpParams::Act(kind), [x], [x]).unwrap();
            b.build()
        };
        assert_ne!(
            with_act(crate::ActKind::Relu).content_hash(),
            with_act(crate::ActKind::Tanh).content_hash()
        );
        // A symbol rename alone changes the hash (names are part of the
        // program's observable output surface).
        let mut b = ProgramBuilder::new();
        let x = b.alloc("renamed", vec![8, 8]);
        let w = b.alloc("w", vec![8, 8]);
        b.apply(Opcode::MatMul, [x, w]).unwrap();
        assert_ne!(b.build().content_hash(), build(false).content_hash());
    }

    #[test]
    fn total_cost_folds() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![8]);
        let z = b.alloc("z", vec![8]);
        b.emit(Opcode::Add1D, [a, a], [z]).unwrap();
        b.emit(Opcode::Act1D, [z], [z]).unwrap();
        let p = b.build();
        assert_eq!(p.total_cost(|_| 3), 6);
    }
}
