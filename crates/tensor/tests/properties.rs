//! Property tests for the tensor substrate: region algebra and memory
//! gather/scatter must be exact for arbitrary shapes and slicing.

use cf_tensor::{gen::DataGen, Memory, Region, Shape, Tensor};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..9, 1..4)
}

proptest! {
    #[test]
    fn split_axis_partitions_exactly(dims in arb_shape(), axis_sel in 0usize..4, parts in 1usize..9) {
        let shape = Shape::new(dims.clone());
        let axis = axis_sel % shape.rank();
        let pieces = shape.split_axis_extents(axis, parts).unwrap();
        // Contiguous, disjoint, complete cover of the axis.
        let mut cursor = 0;
        for (start, len) in &pieces {
            prop_assert_eq!(*start, cursor);
            prop_assert!(*len > 0);
            cursor += len;
        }
        prop_assert_eq!(cursor, shape.dim(axis));
    }

    #[test]
    fn region_runs_cover_numel(dims in arb_shape(), offset in 0u64..50) {
        let region = Region::contiguous(offset, Shape::new(dims));
        let mut total = 0u64;
        let mut min_addr = u64::MAX;
        let mut max_addr = 0u64;
        region.for_each_run(|addr, len| {
            total += len as u64;
            min_addr = min_addr.min(addr);
            max_addr = max_addr.max(addr + len as u64 - 1);
        });
        prop_assert_eq!(total, region.numel());
        prop_assert_eq!(min_addr, region.offset());
        prop_assert_eq!(max_addr, region.end());
    }

    #[test]
    fn sliced_region_roundtrips_through_memory(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..500,
    ) {
        let shape = Shape::new(vec![rows, cols]);
        let base = Region::contiguous(3, shape.clone());
        let mut mem = Memory::new(3 + rows * cols + 8);
        let t = DataGen::new(seed).uniform(shape, -5.0, 5.0);
        mem.write_region(&base, &t).unwrap();
        // Any row/column slice reads back the corresponding elements.
        for r in 0..rows {
            let row = base.slice(0, r, 1).unwrap();
            let data = mem.read_region(&row).unwrap();
            for c in 0..cols {
                prop_assert_eq!(data.get(&[0, c]), t.get(&[r, c]));
            }
        }
        for c in 0..cols {
            let col = base.slice(1, c, 1).unwrap();
            let data = mem.read_region(&col).unwrap();
            for r in 0..rows {
                prop_assert_eq!(data.get(&[r, 0]), t.get(&[r, c]));
            }
        }
    }

    #[test]
    fn split_regions_reassemble_the_tensor(
        rows in 2usize..10,
        cols in 2usize..10,
        parts in 2usize..5,
        axis in 0usize..2,
        seed in 0u64..500,
    ) {
        let shape = Shape::new(vec![rows, cols]);
        let base = Region::contiguous(0, shape.clone());
        let mut mem = Memory::new(rows * cols);
        let t = DataGen::new(seed).uniform(shape.clone(), -1.0, 1.0);
        mem.write_region(&base, &t).unwrap();
        let whole = mem.read_region(&base).unwrap();
        // Reading every piece and re-scattering reproduces the whole.
        let mut copy = Memory::new(rows * cols);
        for piece in base.split_axis(axis, parts).unwrap() {
            let part = mem.read_region(&piece).unwrap();
            copy.write_region(&piece, &part).unwrap();
        }
        prop_assert_eq!(copy.read_region(&base).unwrap(), whole);
    }

    #[test]
    fn overlap_is_symmetric_and_reflexive(
        o1 in 0u64..60, n1 in 1usize..20,
        o2 in 0u64..60, n2 in 1usize..20,
    ) {
        let a = Region::contiguous(o1, Shape::new(vec![n1]));
        let b = Region::contiguous(o2, Shape::new(vec![n2]));
        prop_assert!(a.may_overlap(&a));
        prop_assert_eq!(a.may_overlap(&b), b.may_overlap(&a));
    }

    #[test]
    fn tensor_reshape_preserves_data(dims in arb_shape(), seed in 0u64..500) {
        let shape = Shape::new(dims);
        let n = shape.numel() as usize;
        let t = DataGen::new(seed).uniform(shape, -2.0, 2.0);
        let flat = t.clone().reshape(Shape::new(vec![n])).unwrap();
        prop_assert_eq!(flat.data(), t.data());
    }
}

#[test]
fn memory_copy_between_disjoint_layouts() {
    // Transpose-style copy via a strided region.
    let mut src = Memory::new(12);
    let t = Tensor::from_fn(Shape::new(vec![3, 4]), |i| (i[0] * 4 + i[1]) as f32);
    src.write_contiguous(0, &t).unwrap();
    // View the matrix transposed: shape [4,3], strides [1,4].
    let transposed = Region::strided(0, Shape::new(vec![4, 3]), vec![1, 4]);
    let tt = src.read_region(&transposed).unwrap();
    for i in 0..4 {
        for j in 0..3 {
            assert_eq!(tt.get(&[i, j]), t.get(&[j, i]));
        }
    }
}
