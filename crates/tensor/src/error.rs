use std::fmt;

/// Errors produced by tensor/region/memory operations.
///
/// These surface programming errors in decomposition logic (out-of-bounds
/// regions, shape mismatches) rather than user-facing failures, but they are
/// returned as `Result`s so the fractal machine can report *where* a
/// decomposition went wrong instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A region refers to addresses outside the memory it is applied to.
    RegionOutOfBounds {
        /// Last element address (inclusive) the region touches.
        end: u64,
        /// Size of the memory in elements.
        len: u64,
    },
    /// Two shapes that must match do not.
    ShapeMismatch {
        /// Shape of the left/expected operand.
        expected: Vec<usize>,
        /// Shape of the right/actual operand.
        actual: Vec<usize>,
    },
    /// An axis index is not valid for the shape it is applied to.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the shape.
        rank: usize,
    },
    /// A split was requested into zero parts, or a slice of zero length.
    EmptySplit,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::RegionOutOfBounds { end, len } => {
                write!(f, "region touches element {end} but memory holds {len} elements")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} shape")
            }
            TensorError::EmptySplit => write!(f, "split into zero parts requested"),
        }
    }
}

impl std::error::Error for TensorError {}
