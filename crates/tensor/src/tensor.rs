use std::fmt;

use crate::{Shape, TensorError};

/// An owned dense row-major `f32` tensor.
///
/// `Tensor` is the value type of the functional layer: reference kernels in
/// `cf-ops` consume and produce tensors, and the fractal machine's
/// functional executor gathers operand [`crate::Region`]s into tensors
/// before invoking kernels.
///
/// # Examples
///
/// ```
/// use cf_tensor::{Shape, Tensor};
///
/// let a = Tensor::filled(Shape::new(vec![2, 2]), 1.5);
/// assert_eq!(a.get(&[0, 1]), 1.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a shape and matching row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len() as u64,
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor with every element set to `value`.
    pub fn filled(shape: Shape, value: f32) -> Self {
        let n = shape.numel() as usize;
        Tensor { shape, data: vec![value; n] }
    }

    /// A zero tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor::filled(shape, 0.0)
    }

    /// Builds a tensor by evaluating `f` at every multi-index, in row-major
    /// order.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let n = shape.numel() as usize;
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.rank()];
        for _ in 0..n {
            data.push(f(&idx));
            for axis in (0..shape.rank()).rev() {
                idx[axis] += 1;
                if idx[axis] < shape.dim(axis) {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor { shape, data }
    }

    /// A rank-1 single-element tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(Shape::scalar(), vec![value])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Row-major element data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major element data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Linear (row-major) offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn linear_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.rank(), "index rank mismatch");
        let strides = self.shape.row_major_strides();
        idx.iter()
            .zip(&strides)
            .zip(self.shape.dims())
            .map(|((&i, &s), &d)| {
                assert!(i < d, "index {i} out of bounds for dim {d}");
                i as u64 * s
            })
            .sum::<u64>() as usize
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.linear_index(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.linear_index(idx);
        self.data[i] = value;
    }

    /// Reinterprets the data under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when element counts differ.
    pub fn reshape(self, shape: Shape) -> Result<Tensor, TensorError> {
        if shape.numel() != self.shape.numel() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.dims().to_vec(),
                actual: self.shape.dims().to_vec(),
            });
        }
        Ok(Tensor { shape, data: self.data })
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max))
    }

    /// `true` when every element differs from `other` by at most `tol`.
    ///
    /// Fractal execution reassociates floating-point reductions, so
    /// integration tests compare with a small tolerance instead of bit
    /// equality.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(f, "Tensor{} {preview:?}{ellipsis}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(Shape::new(vec![2, 3]), |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.data(), &[0., 1., 2., 10., 11., 12.]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::new(vec![3, 3]));
        t.set(&[2, 1], 4.5);
        assert_eq!(t.get(&[2, 1]), 4.5);
        assert_eq!(t.get(&[1, 2]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1., 2., 3., 4.]);
        let r = t.reshape(Shape::new(vec![4])).unwrap();
        assert_eq!(r.data(), &[1., 2., 3., 4.]);
        assert!(r.clone().reshape(Shape::new(vec![5])).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec(Shape::new(vec![2]), vec![1.0, 2.0]);
        let b = Tensor::from_vec(Shape::new(vec![2]), vec![1.0005, 2.0]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        let c = Tensor::from_vec(Shape::new(vec![1, 2]), vec![1.0, 2.0]);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(Shape::new(vec![3]), vec![1.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::scalar(1.0);
        assert!(!format!("{t:?}").is_empty());
    }
}
