use std::fmt;

use crate::inline::InlineVec;
use crate::TensorError;

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are the *granularity indicators* of FISA instructions (the `G` of
/// the paper's `⟨O, P, G⟩` tuple): the fractal decomposers work purely on
/// shapes, halving and slicing them until sub-instructions fit a node's
/// local memory.
///
/// # Examples
///
/// ```
/// use cf_tensor::Shape;
///
/// let s = Shape::new(vec![4, 6]);
/// assert_eq!(s.numel(), 24);
/// let parts = s.split_axis(1, 4).unwrap();
/// // ceil-sized chunks: 6 elements in chunks of 2 need only 3 pieces.
/// assert_eq!(parts.iter().map(|p| p.dim(1)).collect::<Vec<_>>(), vec![2, 2, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Shape(InlineVec<usize>);

impl Shape {
    /// Creates a shape from its dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors never occur in
    /// FISA programs and allowing them would complicate split arithmetic.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension in shape {dims:?}");
        Shape(InlineVec::from_vec(dims))
    }

    /// Shape of a scalar (rank-1, one element). FISA models scalars as
    /// single-element vectors so every operand is a tensor.
    pub fn scalar() -> Self {
        Shape(InlineVec::from_slice(&[1]))
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.0.as_slice()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> u64 {
        self.dims().iter().map(|&d| d as u64).product()
    }

    /// Total size in bytes at `f32` precision.
    pub fn bytes(&self) -> u64 {
        self.numel() * crate::ELEM_BYTES
    }

    /// Row-major (C-order) strides, in elements.
    pub fn row_major_strides(&self) -> Vec<u64> {
        self.row_major_strides_inline().as_slice().to_vec()
    }

    /// [`Shape::row_major_strides`] without the heap round-trip.
    pub(crate) fn row_major_strides_inline(&self) -> InlineVec<u64> {
        let rank = self.rank();
        let mut sv = InlineVec::zeroed(rank);
        let s = sv.as_mut_slice();
        let dims = self.dims();
        if rank > 0 {
            s[rank - 1] = 1;
            for i in (0..rank - 1).rev() {
                s[i] = s[i + 1] * dims[i + 1] as u64;
            }
        }
        sv
    }

    /// Returns a copy with dimension `axis` replaced by `extent`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis` is invalid, and
    /// [`TensorError::EmptySplit`] if `extent` is zero.
    pub fn with_dim(&self, axis: usize, extent: usize) -> Result<Shape, TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        if extent == 0 {
            return Err(TensorError::EmptySplit);
        }
        let mut dims = self.0.clone();
        dims.as_mut_slice()[axis] = extent;
        Ok(Shape(dims))
    }

    /// Splits dimension `axis` into `parts` near-equal contiguous pieces
    /// (ceil-sized first), returning the piece shapes. Pieces that would be
    /// empty are omitted, so fewer than `parts` shapes may be returned.
    ///
    /// This is the arithmetic behind both the sequential decomposer (split
    /// until a sub-instruction fits local memory) and the parallel
    /// decomposer (split across FFUs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis and
    /// [`TensorError::EmptySplit`] when `parts == 0`.
    pub fn split_axis(&self, axis: usize, parts: usize) -> Result<Vec<Shape>, TensorError> {
        Ok(self
            .split_axis_extents(axis, parts)?
            .into_iter()
            .map(|(_, len)| {
                let mut dims = self.0.clone();
                dims.as_mut_slice()[axis] = len;
                Shape(dims)
            })
            .collect())
    }

    /// Like [`Shape::split_axis`] but returns `(start, len)` pairs along the
    /// axis instead of full shapes, which is what region slicing needs.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Shape::split_axis`].
    pub fn split_axis_extents(
        &self,
        axis: usize,
        parts: usize,
    ) -> Result<Vec<(usize, usize)>, TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.rank() });
        }
        if parts == 0 {
            return Err(TensorError::EmptySplit);
        }
        let extent = self.dims()[axis];
        let chunk = extent.div_ceil(parts);
        let mut out = Vec::new();
        let mut start = 0;
        while start < extent {
            let len = chunk.min(extent - start);
            out.push((start, len));
            start += len;
        }
        Ok(out)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Shape").field(&self.dims()).finish()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        self.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_bytes() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.bytes(), 240);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_is_one_element() {
        assert_eq!(Shape::scalar().numel(), 1);
    }

    #[test]
    fn row_major_strides_match_manual() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.row_major_strides(), vec![12, 4, 1]);
        let s1 = Shape::new(vec![7]);
        assert_eq!(s1.row_major_strides(), vec![1]);
    }

    #[test]
    fn split_axis_even() {
        let s = Shape::new(vec![8, 2]);
        let parts = s.split_axis(0, 4).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.dims() == [2, 2]));
    }

    #[test]
    fn split_axis_uneven_covers_everything() {
        let s = Shape::new(vec![7]);
        let parts = s.split_axis_extents(0, 3).unwrap();
        assert_eq!(parts, vec![(0, 3), (3, 3), (6, 1)]);
        let total: usize = parts.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn split_more_parts_than_extent_drops_empties() {
        let s = Shape::new(vec![2]);
        let parts = s.split_axis(0, 5).unwrap();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn split_bad_axis_errors() {
        let s = Shape::new(vec![2]);
        assert!(matches!(s.split_axis(3, 2), Err(TensorError::AxisOutOfRange { .. })));
        assert!(matches!(s.split_axis(0, 0), Err(TensorError::EmptySplit)));
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_dim_panics() {
        let _ = Shape::new(vec![2, 0]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
    }
}
