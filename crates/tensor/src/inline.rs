//! Inline-first storage for tiny fixed-rank sequences.
//!
//! Shapes and strides are the most-cloned values in the whole simulator:
//! every fractal split produces piece regions, and every plan step clones
//! regions into loads, stores and child instructions. Real FISA operands
//! are rank ≤ 4 (NCHW at worst), so storing dims and strides inline turns
//! those clones into stack copies. Higher ranks spill to the heap and stay
//! correct, just slower.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Rank threshold under which elements live on the stack.
pub(crate) const INLINE_RANK: usize = 4;

/// A vector of at most a few `Copy` elements, stored inline when short.
///
/// Equality, ordering and hashing are over the logical element slice, so
/// an inline value and a spilled value with the same contents are
/// indistinguishable.
#[derive(Clone)]
pub(crate) enum InlineVec<T: Copy + Default> {
    /// Up to [`INLINE_RANK`] elements on the stack.
    Inline {
        /// Number of live elements in `buf`.
        len: u8,
        /// Element storage; slots at `len..` are unused padding.
        buf: [T; INLINE_RANK],
    },
    /// Spill storage for longer sequences.
    Heap(Vec<T>),
}

impl<T: Copy + Default> InlineVec<T> {
    pub(crate) fn from_slice(s: &[T]) -> Self {
        if s.len() <= INLINE_RANK {
            let mut buf = [T::default(); INLINE_RANK];
            buf[..s.len()].copy_from_slice(s);
            InlineVec::Inline { len: s.len() as u8, buf }
        } else {
            InlineVec::Heap(s.to_vec())
        }
    }

    pub(crate) fn from_vec(v: Vec<T>) -> Self {
        if v.len() <= INLINE_RANK {
            Self::from_slice(&v)
        } else {
            InlineVec::Heap(v)
        }
    }

    /// `len` default-valued elements.
    pub(crate) fn zeroed(len: usize) -> Self {
        if len <= INLINE_RANK {
            InlineVec::Inline { len: len as u8, buf: [T::default(); INLINE_RANK] }
        } else {
            InlineVec::Heap(vec![T::default(); len])
        }
    }

    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            InlineVec::Inline { len, buf } => &buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            InlineVec::Inline { len, buf } => &mut buf[..*len as usize],
            InlineVec::Heap(v) => v,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len as usize,
            InlineVec::Heap(v) => v.len(),
        }
    }
}

impl<T: Copy + Default> Default for InlineVec<T> {
    fn default() -> Self {
        InlineVec::Inline { len: 0, buf: [T::default(); INLINE_RANK] }
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for InlineVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq> Eq for InlineVec<T> {}

impl<T: Copy + Default + Hash> Hash for InlineVec<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default + PartialOrd> PartialOrd for InlineVec<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Ord> Ord for InlineVec<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for InlineVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_heap_compare_equal_by_contents() {
        let a: InlineVec<u64> = InlineVec::from_slice(&[1, 2, 3]);
        let b: InlineVec<u64> = InlineVec::Heap(vec![1, 2, 3]);
        assert_eq!(a, b);
        let mut ha = std::collections::hash_map::DefaultHasher::new();
        let mut hb = std::collections::hash_map::DefaultHasher::new();
        use std::hash::Hasher as _;
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn long_sequences_spill() {
        let v: Vec<usize> = (0..INLINE_RANK + 3).collect();
        let iv = InlineVec::from_vec(v.clone());
        assert!(matches!(iv, InlineVec::Heap(_)));
        assert_eq!(iv.as_slice(), &v[..]);
        assert_eq!(iv.len(), v.len());
    }

    #[test]
    fn zeroed_and_mutate() {
        let mut iv: InlineVec<u64> = InlineVec::zeroed(3);
        iv.as_mut_slice()[1] = 7;
        assert_eq!(iv.as_slice(), &[0, 7, 0]);
    }
}
