//! Tensor substrate for the Cambricon-F reproduction.
//!
//! This crate provides the data-layer primitives every other crate builds on:
//!
//! * [`Shape`] — dimension lists with split/slice arithmetic used by the
//!   fractal decomposers,
//! * [`Region`] — a strided view into a linear memory, the unit of DMA
//!   transfer between levels of a fractal machine,
//! * [`Memory`] — a flat `f32` memory modelling one node's local storage (or
//!   the root external memory),
//! * [`Tensor`] — an owned dense tensor used by reference kernels,
//! * [`gen`] — seeded synthetic-data generators standing in for the paper's
//!   datasets (ImageNet pixels are irrelevant to machine behaviour; shapes
//!   and operation mix are what matter).
//!
//! # Examples
//!
//! ```
//! use cf_tensor::{Shape, Tensor};
//!
//! let t = Tensor::from_fn(Shape::new(vec![2, 3]), |idx| (idx[0] * 3 + idx[1]) as f32);
//! assert_eq!(t.get(&[1, 2]), 5.0);
//! assert_eq!(t.shape().numel(), 6);
//! ```

mod error;
pub mod fingerprint;
pub mod gen;
mod inline;
mod memory;
mod region;
mod shape;
mod tensor;

pub use error::TensorError;
pub use memory::Memory;
pub use region::Region;
pub use shape::Shape;
pub use tensor::Tensor;

/// Size of one element in bytes. The whole reproduction works in `f32`,
/// matching the paper's use of a single scalar type across FISA operands.
pub const ELEM_BYTES: u64 = 4;
