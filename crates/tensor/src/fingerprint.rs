//! Stable content hashing for cache keys.
//!
//! `cf-runtime` keys its plan/report cache on `(machine fingerprint,
//! program hash)`. Rust's `std::hash::DefaultHasher` is explicitly *not*
//! stable across releases, so cache keys that may outlive a process (or be
//! compared across builds, e.g. in persisted run manifests) use this
//! fixed algorithm instead: FNV-1a over a canonical byte encoding, with
//! `f64` fields hashed by their IEEE-754 bit patterns.
//!
//! # Examples
//!
//! ```
//! use cf_tensor::fingerprint::StableHasher;
//!
//! let mut a = StableHasher::new();
//! a.write_u64(7);
//! a.write_f64(0.5);
//! let mut b = StableHasher::new();
//! b.write_u64(7);
//! b.write_f64(0.5);
//! assert_eq!(a.finish(), b.finish());
//! ```

use crate::{Region, Shape};

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A 64-bit FNV-1a hasher with a fixed, documented algorithm.
///
/// Unlike `std::hash::Hasher` implementations, the output is guaranteed
/// stable across Rust releases, platforms and processes, making it safe to
/// use in cache keys and persisted artifacts.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern. (`-0.0` and `0.0` hash
    /// differently; configuration values are written literally, so the
    /// distinction never arises in practice.)
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds an `f32` by its IEEE-754 bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Feeds a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Types with a canonical stable hash encoding.
pub trait StableHash {
    /// Feeds `self`'s canonical encoding into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

impl StableHash for Shape {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.rank());
        for &d in self.dims() {
            h.write_usize(d);
        }
    }
}

impl StableHash for Region {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.offset());
        self.shape().stable_hash(h);
        h.write_usize(self.strides().len());
        for &s in self.strides() {
            h.write_u64(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a reference values.
        let mut h = StableHasher::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn region_hash_distinguishes_layout() {
        let contiguous = Region::contiguous(0, Shape::new(vec![4, 4]));
        let strided = Region::strided(0, Shape::new(vec![4, 4]), vec![8, 1]);
        let (mut ha, mut hb) = (StableHasher::new(), StableHasher::new());
        contiguous.stable_hash(&mut ha);
        strided.stable_hash(&mut hb);
        assert_ne!(ha.finish(), hb.finish());

        let mut hc = StableHasher::new();
        Region::contiguous(0, Shape::new(vec![4, 4])).stable_hash(&mut hc);
        assert_eq!(ha.finish(), hc.finish());
    }
}
