//! Seeded synthetic-data generators.
//!
//! The paper evaluates on ImageNet and on "a randomly generated data set …
//! 262 thousand 512-dimension samples within 128 categories". Neither actual
//! pixels nor the authors' random draws affect machine behaviour — only
//! shapes and value ranges do — so this module provides deterministic,
//! seeded generators as the dataset substitute (see DESIGN.md §1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Shape, Tensor};

/// A seeded stream of synthetic tensors.
///
/// # Examples
///
/// ```
/// use cf_tensor::gen::DataGen;
/// use cf_tensor::Shape;
///
/// let mut g = DataGen::new(42);
/// let a = g.uniform(Shape::new(vec![4, 4]), -1.0, 1.0);
/// let b = DataGen::new(42).uniform(Shape::new(vec![4, 4]), -1.0, 1.0);
/// assert_eq!(a, b); // same seed, same data
/// ```
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// A generator with a fixed seed (deterministic across runs/platforms).
    pub fn new(seed: u64) -> Self {
        DataGen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn uniform(&mut self, shape: Shape, lo: f32, hi: f32) -> Tensor {
        let n = shape.numel() as usize;
        let data = (0..n).map(|_| self.rng.gen_range(lo..hi)).collect();
        Tensor::from_vec(shape, data)
    }

    /// Approximately normal tensor (Irwin–Hall sum of 12 uniforms), mean
    /// `mean`, standard deviation `std`. Avoids pulling in a distributions
    /// crate while staying close enough to Gaussian for ML-style data.
    pub fn normal(&mut self, shape: Shape, mean: f32, std: f32) -> Tensor {
        let n = shape.numel() as usize;
        let data = (0..n)
            .map(|_| {
                let s: f32 = (0..12).map(|_| self.rng.gen_range(0.0f32..1.0)).sum();
                mean + (s - 6.0) * std
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// Integer-valued labels in `[0, classes)` stored as `f32`, as FISA has
    /// a single scalar type.
    pub fn labels(&mut self, n: usize, classes: usize) -> Tensor {
        let data = (0..n).map(|_| self.rng.gen_range(0..classes) as f32).collect();
        Tensor::from_vec(Shape::new(vec![n]), data)
    }

    /// A clustered sample set mimicking the paper's ML benchmark data:
    /// `n` samples of dimension `d` drawn around `k` random centroids.
    /// Returns `(samples[n, d], labels[n])`.
    pub fn clustered(&mut self, n: usize, d: usize, k: usize) -> (Tensor, Tensor) {
        let centroids = self.uniform(Shape::new(vec![k, d]), -4.0, 4.0);
        let mut samples = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = self.rng.gen_range(0..k);
            labels.push(c as f32);
            for j in 0..d {
                let jitter: f32 = self.rng.gen_range(-0.5..0.5);
                samples.push(centroids.get(&[c, j]) + jitter);
            }
        }
        (
            Tensor::from_vec(Shape::new(vec![n, d]), samples),
            Tensor::from_vec(Shape::new(vec![n]), labels),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = DataGen::new(7).normal(Shape::new(vec![16]), 0.0, 1.0);
        let b = DataGen::new(7).normal(Shape::new(vec![16]), 0.0, 1.0);
        assert_eq!(a, b);
        let c = DataGen::new(8).normal(Shape::new(vec![16]), 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = DataGen::new(1).uniform(Shape::new(vec![256]), 2.0, 3.0);
        assert!(t.data().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn labels_in_range() {
        let t = DataGen::new(1).labels(128, 5);
        assert!(t.data().iter().all(|&x| (0.0..5.0).contains(&x) && x.fract() == 0.0));
    }

    #[test]
    fn clustered_shapes() {
        let (x, y) = DataGen::new(3).clustered(32, 8, 4);
        assert_eq!(x.shape().dims(), &[32, 8]);
        assert_eq!(y.shape().dims(), &[32]);
        assert!(y.data().iter().all(|&l| l < 4.0));
    }

    #[test]
    fn normal_moments_plausible() {
        let t = DataGen::new(9).normal(Shape::new(vec![4096]), 1.0, 2.0);
        let mean: f32 = t.data().iter().sum::<f32>() / 4096.0;
        assert!((mean - 1.0).abs() < 0.2, "mean {mean}");
        let var: f32 = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4096.0;
        assert!((var.sqrt() - 2.0).abs() < 0.3, "std {}", var.sqrt());
    }
}
