use crate::{Region, Shape, Tensor, TensorError};

/// A flat `f32` memory modelling one storage component of a fractal machine:
/// the root external memory, a node's local storage, or a leaf accelerator's
/// scratchpad.
///
/// All FISA operands resolve to [`Region`]s of some `Memory`; the DMA
/// controller moves regions between a node's `Memory` and its parent's.
///
/// # Examples
///
/// ```
/// use cf_tensor::{Memory, Region, Shape, Tensor};
///
/// let mut mem = Memory::new(64);
/// let region = Region::contiguous(8, Shape::new(vec![2, 2]));
/// mem.write_region(&region, &Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, 2.0, 3.0, 4.0]))?;
/// let back = mem.read_region(&region)?;
/// assert_eq!(back.data(), &[1.0, 2.0, 3.0, 4.0]);
/// # Ok::<(), cf_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    data: Vec<f32>,
}

impl Memory {
    /// Creates a zero-filled memory of `len` elements.
    pub fn new(len: usize) -> Self {
        Memory { data: vec![0.0; len] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the memory holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw view of the backing store.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw view of the backing store.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    fn check(&self, region: &Region) -> Result<(), TensorError> {
        let end = region.end();
        if end >= self.data.len() as u64 {
            return Err(TensorError::RegionOutOfBounds { end, len: self.data.len() as u64 });
        }
        Ok(())
    }

    /// Gathers a region into an owned dense [`Tensor`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RegionOutOfBounds`] if the region exceeds the
    /// memory.
    pub fn read_region(&self, region: &Region) -> Result<Tensor, TensorError> {
        self.check(region)?;
        let mut out = Vec::with_capacity(region.numel() as usize);
        region.for_each_run(|addr, len| {
            out.extend_from_slice(&self.data[addr as usize..addr as usize + len]);
        });
        Ok(Tensor::from_vec(region.shape().clone(), out))
    }

    /// Scatters a dense tensor into a region.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RegionOutOfBounds`] if the region exceeds the
    /// memory and [`TensorError::ShapeMismatch`] if the tensor shape differs
    /// from the region shape.
    pub fn write_region(&mut self, region: &Region, tensor: &Tensor) -> Result<(), TensorError> {
        self.check(region)?;
        if tensor.shape() != region.shape() {
            return Err(TensorError::ShapeMismatch {
                expected: region.shape().dims().to_vec(),
                actual: tensor.shape().dims().to_vec(),
            });
        }
        let src = tensor.data();
        let mut cursor = 0usize;
        region.for_each_run(|addr, len| {
            self.data[addr as usize..addr as usize + len]
                .copy_from_slice(&src[cursor..cursor + len]);
            cursor += len;
        });
        Ok(())
    }

    /// Copies `src_region` of `src` into `dst_region` of `self` — the
    /// functional model of one DMA transfer. Shapes must match; layouts may
    /// differ (DMA performs the gather/scatter).
    ///
    /// # Errors
    ///
    /// Propagates bounds and shape errors from
    /// [`Memory::read_region`]/[`Memory::write_region`].
    pub fn copy_from(
        &mut self,
        dst_region: &Region,
        src: &Memory,
        src_region: &Region,
    ) -> Result<(), TensorError> {
        let t = src.read_region(src_region)?;
        // Reshape is legal whenever element counts agree: DMA treats the
        // transfer as a linear stream.
        let t = if t.shape() == dst_region.shape() {
            t
        } else if t.shape().numel() == dst_region.shape().numel() {
            Tensor::from_vec(dst_region.shape().clone(), t.into_vec())
        } else {
            return Err(TensorError::ShapeMismatch {
                expected: dst_region.shape().dims().to_vec(),
                actual: t.shape().dims().to_vec(),
            });
        };
        self.write_region(dst_region, &t)
    }

    /// Convenience: read a contiguous row-major tensor at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RegionOutOfBounds`] if the block exceeds the
    /// memory.
    pub fn read_contiguous(&self, offset: u64, shape: Shape) -> Result<Tensor, TensorError> {
        self.read_region(&Region::contiguous(offset, shape))
    }

    /// Convenience: write a tensor contiguously (row-major) at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RegionOutOfBounds`] if the block exceeds the
    /// memory.
    pub fn write_contiguous(&mut self, offset: u64, tensor: &Tensor) -> Result<(), TensorError> {
        self.write_region(&Region::contiguous(offset, tensor.shape().clone()), tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_contiguous() {
        let mut mem = Memory::new(32);
        let t = Tensor::from_vec(Shape::new(vec![3, 2]), vec![1., 2., 3., 4., 5., 6.]);
        mem.write_contiguous(4, &t).unwrap();
        assert_eq!(mem.read_contiguous(4, Shape::new(vec![3, 2])).unwrap(), t);
        // Neighbouring elements untouched.
        assert_eq!(mem.as_slice()[3], 0.0);
        assert_eq!(mem.as_slice()[10], 0.0);
    }

    #[test]
    fn strided_write_scatter() {
        let mut mem = Memory::new(12);
        // Write a column into a 3x4 row-major matrix at offset 0.
        let col = Region::contiguous(0, Shape::new(vec![3, 4])).slice(1, 2, 1).unwrap();
        mem.write_region(&col, &Tensor::from_vec(Shape::new(vec![3, 1]), vec![7., 8., 9.]))
            .unwrap();
        assert_eq!(mem.as_slice()[2], 7.0);
        assert_eq!(mem.as_slice()[6], 8.0);
        assert_eq!(mem.as_slice()[10], 9.0);
    }

    #[test]
    fn copy_between_memories_with_layout_change() {
        let mut a = Memory::new(16);
        let mut b = Memory::new(16);
        let t = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1., 2., 3., 4.]);
        a.write_contiguous(0, &t).unwrap();
        // Copy the 2x2 into b as a flat vector of 4.
        b.copy_from(
            &Region::contiguous(8, Shape::new(vec![4])),
            &a,
            &Region::contiguous(0, Shape::new(vec![2, 2])),
        )
        .unwrap();
        assert_eq!(&b.as_slice()[8..12], &[1., 2., 3., 4.]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mem = Memory::new(4);
        assert!(mem.read_contiguous(2, Shape::new(vec![4])).is_err());
        let mut mem = Memory::new(4);
        let t = Tensor::from_vec(Shape::new(vec![4]), vec![0.; 4]);
        assert!(mem.write_contiguous(1, &t).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut mem = Memory::new(8);
        let t = Tensor::from_vec(Shape::new(vec![2]), vec![1., 2.]);
        let r = Region::contiguous(0, Shape::new(vec![3]));
        assert!(matches!(mem.write_region(&r, &t), Err(TensorError::ShapeMismatch { .. })));
    }
}
