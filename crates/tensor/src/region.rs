use crate::inline::InlineVec;
use crate::{Shape, TensorError};

/// A strided view into a linear `f32` memory.
///
/// Regions are the addressing unit of FISA operands and of DMA transfers
/// between a node and its parent: the demotion decoder slices parent-memory
/// regions into sub-regions, and the DMA controller copies regions between
/// memories. A region never owns data.
///
/// # Examples
///
/// ```
/// use cf_tensor::{Region, Shape};
///
/// // A 4x4 matrix stored row-major at element 100.
/// let m = Region::contiguous(100, Shape::new(vec![4, 4]));
/// // Its lower-right 2x2 block.
/// let block = m.slice(0, 2, 2).unwrap().slice(1, 2, 2).unwrap();
/// assert_eq!(block.offset(), 100 + 2 * 4 + 2);
/// assert_eq!(block.shape().dims(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    offset: u64,
    shape: Shape,
    strides: InlineVec<u64>,
}

impl Region {
    /// A row-major (contiguous) region of `shape` starting at element
    /// `offset`.
    pub fn contiguous(offset: u64, shape: Shape) -> Self {
        let strides = shape.row_major_strides_inline();
        Region { offset, shape, strides }
    }

    /// A region with explicit strides (in elements).
    ///
    /// # Panics
    ///
    /// Panics if `strides.len() != shape.rank()`.
    pub fn strided(offset: u64, shape: Shape, strides: Vec<u64>) -> Self {
        assert_eq!(strides.len(), shape.rank(), "stride/rank mismatch");
        Region { offset, shape, strides: InlineVec::from_vec(strides) }
    }

    /// Element offset of the first element.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The same view translated `delta` elements forward in memory.
    ///
    /// Slicing is translation-invariant, so a region derived from a
    /// zero-based operand can be rebased onto the operand's real address
    /// by translating it by the operand's offset.
    pub fn translated(&self, delta: u64) -> Self {
        Region {
            offset: self.offset + delta,
            shape: self.shape.clone(),
            strides: self.strides.clone(),
        }
    }

    /// The region's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Per-axis strides in elements.
    pub fn strides(&self) -> &[u64] {
        self.strides.as_slice()
    }

    /// Number of elements in the region.
    pub fn numel(&self) -> u64 {
        self.shape.numel()
    }

    /// Size in bytes (`f32` elements).
    pub fn bytes(&self) -> u64 {
        self.shape.bytes()
    }

    /// Whether the region is dense row-major (a single contiguous block).
    pub fn is_contiguous(&self) -> bool {
        self.strides == self.shape.row_major_strides_inline()
    }

    /// Address of the last element the region touches (inclusive).
    pub fn end(&self) -> u64 {
        self.offset
            + self
                .shape
                .dims()
                .iter()
                .zip(self.strides.as_slice())
                .map(|(&d, &s)| (d as u64 - 1) * s)
                .sum::<u64>()
    }

    /// Sub-region selecting `[start, start+len)` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis,
    /// [`TensorError::EmptySplit`] when `len == 0`, and
    /// [`TensorError::RegionOutOfBounds`] when the slice exceeds the axis
    /// extent.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> Result<Region, TensorError> {
        if axis >= self.shape.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: self.shape.rank() });
        }
        if len == 0 {
            return Err(TensorError::EmptySplit);
        }
        if start + len > self.shape.dim(axis) {
            return Err(TensorError::RegionOutOfBounds {
                end: (start + len) as u64,
                len: self.shape.dim(axis) as u64,
            });
        }
        Ok(Region {
            offset: self.offset + start as u64 * self.strides.as_slice()[axis],
            shape: self.shape.with_dim(axis, len)?,
            strides: self.strides.clone(),
        })
    }

    /// Splits the region into near-equal sub-regions along `axis` (the
    /// region analogue of [`Shape::split_axis`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shape::split_axis`].
    pub fn split_axis(&self, axis: usize, parts: usize) -> Result<Vec<Region>, TensorError> {
        self.shape
            .split_axis_extents(axis, parts)?
            .into_iter()
            .map(|(start, len)| self.slice(axis, start, len))
            .collect()
    }

    /// Conservative overlap test in the linear address space: `true` if the
    /// bounding intervals of the two regions intersect. Used for
    /// read-after-write hazard detection, where a false positive merely
    /// stalls the pipeline while a false negative would corrupt data.
    pub fn may_overlap(&self, other: &Region) -> bool {
        self.offset <= other.end() && other.offset <= self.end()
    }

    /// Visits the region as maximal contiguous `(start_address, length)`
    /// runs, in row-major order. This is the inner loop of every DMA copy.
    pub fn for_each_run(&self, mut f: impl FnMut(u64, usize)) {
        let rank = self.shape.rank();
        let strides = self.strides.as_slice();
        // The innermost axis forms a contiguous run only when its stride is 1;
        // otherwise it is emitted as element-sized runs.
        let inner_len = self.shape.dim(rank - 1);
        let inner_stride = strides[rank - 1];
        let outer_rank = rank - 1;
        let mut idx = vec![0usize; outer_rank];
        loop {
            let mut addr = self.offset;
            for (i, &ix) in idx.iter().enumerate() {
                addr += ix as u64 * strides[i];
            }
            if inner_stride == 1 {
                f(addr, inner_len);
            } else {
                for k in 0..inner_len {
                    f(addr + k as u64 * inner_stride, 1);
                }
            }
            // Odometer increment over the outer axes.
            let mut axis = outer_rank;
            loop {
                if axis == 0 {
                    return;
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < self.shape.dim(axis) {
                    break;
                }
                idx[axis] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_region_end() {
        let r = Region::contiguous(10, Shape::new(vec![2, 3]));
        assert_eq!(r.end(), 10 + 5);
        assert!(r.is_contiguous());
    }

    #[test]
    fn slice_matrix_rows_stays_contiguous() {
        let r = Region::contiguous(0, Shape::new(vec![4, 8]));
        let top = r.slice(0, 0, 2).unwrap();
        assert!(top.is_contiguous());
        let bottom = r.slice(0, 2, 2).unwrap();
        assert_eq!(bottom.offset(), 16);
    }

    #[test]
    fn slice_matrix_cols_is_strided() {
        let r = Region::contiguous(0, Shape::new(vec![4, 8]));
        let right = r.slice(1, 4, 4).unwrap();
        assert!(!right.is_contiguous());
        assert_eq!(right.offset(), 4);
        assert_eq!(right.end(), 4 + 3 * 8 + 3);
    }

    #[test]
    fn split_axis_covers_region() {
        let r = Region::contiguous(0, Shape::new(vec![10]));
        let parts = r.split_axis(0, 3).unwrap();
        let total: u64 = parts.iter().map(Region::numel).sum();
        assert_eq!(total, 10);
        assert_eq!(parts[0].offset(), 0);
        assert_eq!(parts[1].offset(), 4);
    }

    #[test]
    fn overlap_detection() {
        let a = Region::contiguous(0, Shape::new(vec![10]));
        let b = Region::contiguous(5, Shape::new(vec![10]));
        let c = Region::contiguous(10, Shape::new(vec![4]));
        assert!(a.may_overlap(&b));
        assert!(b.may_overlap(&c));
        assert!(!a.may_overlap(&c));
    }

    #[test]
    fn runs_of_contiguous_region() {
        let r = Region::contiguous(3, Shape::new(vec![2, 4]));
        let mut runs = Vec::new();
        r.for_each_run(|a, l| runs.push((a, l)));
        assert_eq!(runs, vec![(3, 4), (7, 4)]);
    }

    #[test]
    fn runs_of_column_slice() {
        let r = Region::contiguous(0, Shape::new(vec![3, 4])).slice(1, 1, 2).unwrap();
        let mut runs = Vec::new();
        r.for_each_run(|a, l| runs.push((a, l)));
        assert_eq!(runs, vec![(1, 2), (5, 2), (9, 2)]);
    }

    #[test]
    fn runs_of_fully_strided_region() {
        // Column vector of a 3x4 matrix: stride 4, no contiguous runs.
        let r = Region::strided(2, Shape::new(vec![3]), vec![4]);
        let mut runs = Vec::new();
        r.for_each_run(|a, l| runs.push((a, l)));
        assert_eq!(runs, vec![(2, 1), (6, 1), (10, 1)]);
    }

    #[test]
    fn bad_slices_error() {
        let r = Region::contiguous(0, Shape::new(vec![4]));
        assert!(r.slice(0, 2, 3).is_err());
        assert!(r.slice(1, 0, 1).is_err());
        assert!(r.slice(0, 0, 0).is_err());
    }
}
