//! The Table 1 primitive-cost decomposition.
//!
//! The paper profiles CPU execution time of six ML techniques and buckets
//! it into seven primitives. This reproduction decomposes the *same
//! workloads* analytically (operation counts over the full-size
//! definitions — deterministic, unlike wall-clock profiling; DESIGN.md §1)
//! by classifying every instruction of the FISA implementation.

use cf_isa::{Opcode, Program};
use cf_ops::cost;

use crate::{ml, nets};

/// The seven primitive buckets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Primitive {
    /// Inner production (vector·vector distance/dot kernels).
    Ip,
    /// Convolution.
    Conv,
    /// Pooling.
    Pool,
    /// Matrix multiplying matrix.
    Mmm,
    /// Elementwise operations.
    Eltw,
    /// Sorting (and merging).
    Sort,
    /// Counting.
    Count,
}

impl Primitive {
    /// All buckets in Table 1 column order.
    pub const ALL: [Primitive; 7] = [
        Primitive::Ip,
        Primitive::Conv,
        Primitive::Pool,
        Primitive::Mmm,
        Primitive::Eltw,
        Primitive::Sort,
        Primitive::Count,
    ];

    /// Column header as printed in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::Ip => "IP",
            Primitive::Conv => "CONV",
            Primitive::Pool => "POOL",
            Primitive::Mmm => "MMM",
            Primitive::Eltw => "ELTW",
            Primitive::Sort => "SORT",
            Primitive::Count => "COUNT",
        }
    }

    /// The bucket an opcode belongs to.
    pub fn of(op: Opcode) -> Primitive {
        match op {
            Opcode::Euclidian1D => Primitive::Ip,
            Opcode::Cv2D | Opcode::Cv3D => Primitive::Conv,
            Opcode::Max2D | Opcode::Min2D | Opcode::Avg2D => Primitive::Pool,
            Opcode::MatMul => Primitive::Mmm,
            Opcode::Add1D
            | Opcode::Sub1D
            | Opcode::Mul1D
            | Opcode::Act1D
            | Opcode::Lrn
            | Opcode::HSum1D
            | Opcode::HProd1D => Primitive::Eltw,
            Opcode::Sort1D | Opcode::Merge1D => Primitive::Sort,
            Opcode::Count1D => Primitive::Count,
        }
    }
}

/// A Table 1 row: per-primitive share of a technique's operations.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Technique name.
    pub technique: String,
    /// Fraction of total operations per bucket (sums to 1).
    pub shares: [f64; 7],
}

impl ProfileRow {
    /// Share of one bucket.
    pub fn share(&self, p: Primitive) -> f64 {
        self.shares[Primitive::ALL.iter().position(|&q| q == p).unwrap()]
    }
}

/// Decomposes a program's operations into the primitive buckets.
pub fn profile_program(name: &str, program: &Program) -> ProfileRow {
    let mut ops = [0u64; 7];
    for inst in program.instructions() {
        let bucket = Primitive::ALL.iter().position(|&p| p == Primitive::of(inst.op)).unwrap();
        ops[bucket] += cost::flops(inst);
    }
    let total: u64 = ops.iter().sum::<u64>().max(1);
    let mut shares = [0.0; 7];
    for (s, &o) in shares.iter_mut().zip(&ops) {
        *s = o as f64 / total as f64;
    }
    ProfileRow { technique: name.to_string(), shares }
}

/// The six Table 1 techniques, profiled at the given size (use
/// [`ml::MlSize::paper`] for the paper's sizes; smaller in tests).
///
/// # Errors
///
/// Propagates program-construction errors.
pub fn table1(size: &ml::MlSize) -> Result<Vec<ProfileRow>, cf_isa::IsaError> {
    let knn_k = 16;
    Ok(vec![
        profile_program("CNN", &nets::build_program(&nets::alexnet(), 1)?),
        profile_program("DNN", &nets::build_program(&nets::mlp3(), 64)?),
        profile_program("k-Means", &ml::kmeans_program(size)?),
        profile_program("k-NN", &ml::knn_program(size, knn_k)?),
        profile_program("SVM", &ml::svm_program(size)?),
        profile_program("LVQ", &ml::lvq_program(size)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size() -> ml::MlSize {
        ml::MlSize { samples: 8192, dims: 128, classes: 128, queries: 32, iters: 2 }
    }

    #[test]
    fn cnn_is_conv_dominated() {
        let rows = table1(&size()).unwrap();
        let cnn = &rows[0];
        // Table 1: CONV 94.7x %.
        assert!(cnn.share(Primitive::Conv) > 0.90, "{:?}", cnn.shares);
        assert!(cnn.share(Primitive::Mmm) > 0.02 && cnn.share(Primitive::Mmm) < 0.08);
    }

    #[test]
    fn dnn_is_mmm_dominated() {
        let rows = table1(&size()).unwrap();
        let dnn = &rows[1];
        assert!(dnn.share(Primitive::Mmm) > 0.99, "{:?}", dnn.shares);
    }

    #[test]
    fn ml_rows_match_paper_shape() {
        let rows = table1(&size()).unwrap();
        let get = |name: &str| rows.iter().find(|r| r.technique == name).unwrap();
        assert!(get("k-Means").share(Primitive::Ip) > 0.80);
        assert!(get("k-NN").share(Primitive::Ip) > 0.95);
        assert!(get("SVM").share(Primitive::Ip) > 0.95);
        let lvq = get("LVQ");
        assert!(lvq.share(Primitive::Eltw) > 0.5, "{:?}", lvq.shares);
        assert!(lvq.share(Primitive::Ip) > 0.3);
    }

    #[test]
    fn shares_sum_to_one() {
        for row in table1(&size()).unwrap() {
            let total: f64 = row.shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", row.technique);
        }
    }
}
