//! The classic-ML benchmarks of Table 5 (K-NN, K-Means, LVQ, SVM) as FISA
//! programs, over the paper's synthetic dataset: 262 144 samples of 512
//! dimensions in 128 categories.
//!
//! K-NN is implemented exactly (distance matrix → per-query key/payload
//! sort → per-class vote counts; its votes are functionally verified
//! against a native Rust reference). K-Means, LVQ and SVM are *iterative*
//! algorithms whose control step (argmin/comparison) FISA, as published,
//! does not expose as a primitive; their programs reproduce the paper's
//! Table 1 primitive mix and operation granularity (the properties that
//! determine machine behaviour) with the control step approximated by
//! equivalent-cost elementwise passes — see DESIGN.md §1.

use cf_isa::{CountParams, Instruction, IsaError, OpParams, Opcode, Program, ProgramBuilder};
use cf_tensor::{Region, Shape};

/// Problem sizes for the ML benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlSize {
    /// Number of reference samples.
    pub samples: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Categories.
    pub classes: usize,
    /// Query batch (K-NN).
    pub queries: usize,
    /// Training iterations (K-Means, LVQ, SVM).
    pub iters: usize,
}

impl MlSize {
    /// The paper's dataset (Table 5).
    pub fn paper() -> Self {
        MlSize { samples: 262_144, dims: 512, classes: 128, queries: 256, iters: 2 }
    }

    /// A miniature instance for functional tests.
    pub fn small() -> Self {
        MlSize { samples: 96, dims: 8, classes: 4, queries: 4, iters: 2 }
    }
}

/// K-NN classification of `queries` against the labelled sample set
/// (paper Figure 11): squared distances, a key/payload sort per query,
/// then one `Count1D` per (query, class) over the `k` nearest labels.
///
/// Symbols: `refs [n,d]`, `labels [n]`, `queries [q,d]`, `votes [q,c]`.
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn knn_program(s: &MlSize, k: usize) -> Result<Program, IsaError> {
    knn_program_with_candidates(s, k, s.classes.min(8))
}

/// [`knn_program`] with an explicit number of vote-candidate classes per
/// query. A real controller counts the label *runs* present among the `k`
/// nearest neighbours — O(k) work, at most `k` distinct classes — rather
/// than issuing one count per possible class; `candidates` bounds that
/// per-query count-instruction tail (tests use `candidates = classes` for
/// exact vote vectors).
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn knn_program_with_candidates(
    s: &MlSize,
    k: usize,
    candidates: usize,
) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let refs = b.alloc("refs", vec![s.samples, s.dims]);
    let labels = b.alloc("labels", vec![s.samples]);
    let queries = b.alloc("queries", vec![s.queries, s.dims]);
    let dist = b.apply(Opcode::Euclidian1D, [queries, refs])?;
    let votes = b.alloc("votes", vec![s.queries, s.classes]);
    // Two double-buffered sort outputs so consecutive queries can overlap
    // in the FISA pipeline.
    let sorted_d = [b.alloc("%sd0", vec![s.samples]), b.alloc("%sd1", vec![s.samples])];
    let sorted_l = [b.alloc("%sl0", vec![s.samples]), b.alloc("%sl1", vec![s.samples])];
    let dist_region = b.region(dist[0]).clone();
    let labels_region = b.region(labels).clone();
    let votes_region = b.region(votes).clone();
    for q in 0..s.queries {
        let buf = q % 2;
        let row = dist_region.slice(0, q, 1)?;
        let row = Region::contiguous(row.offset(), Shape::new(vec![s.samples]));
        let sd = b.region(sorted_d[buf]).clone();
        let sl = b.region(sorted_l[buf]).clone();
        b.push_raw(Instruction::new(
            Opcode::Sort1D,
            OpParams::None,
            vec![row, labels_region.clone()],
            vec![sd, sl.clone()],
        )?);
        let topk = sl.slice(0, 0, k)?;
        for c in 0..candidates.min(s.classes) {
            let vote_cell = votes_region.slice(0, q, 1)?.slice(1, c, 1)?;
            let vote_cell = Region::contiguous(vote_cell.offset(), Shape::scalar());
            b.push_raw(Instruction::new(
                Opcode::Count1D,
                OpParams::Count(CountParams { value: c as f32, tol: 0.1 }),
                vec![topk.clone()],
                vec![vote_cell],
            )?);
        }
    }
    Ok(b.build())
}

/// Native K-NN reference: vote counts per query. Used to verify the FISA
/// program end to end.
pub fn knn_reference(
    refs: &[f32],
    labels: &[f32],
    queries: &[f32],
    s: &MlSize,
    k: usize,
) -> Vec<Vec<u32>> {
    let mut votes = Vec::with_capacity(s.queries);
    for q in 0..s.queries {
        let qv = &queries[q * s.dims..(q + 1) * s.dims];
        let mut dist: Vec<(f32, f32)> = (0..s.samples)
            .map(|i| {
                let rv = &refs[i * s.dims..(i + 1) * s.dims];
                let d: f32 = qv.iter().zip(rv).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, labels[i])
            })
            .collect();
        dist.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut v = vec![0u32; s.classes];
        for &(_, label) in dist.iter().take(k) {
            v[label as usize] += 1;
        }
        votes.push(v);
    }
    votes
}

fn eltwise_passes(
    b: &mut ProgramBuilder,
    x: cf_isa::TensorHandle,
    scratch: cf_isa::TensorHandle,
    passes: usize,
) -> Result<(), IsaError> {
    for i in 0..passes {
        match i % 3 {
            0 => b.emit(Opcode::Sub1D, [x, scratch], [scratch])?,
            1 => b.emit(Opcode::Mul1D, [x, scratch], [scratch])?,
            _ => b.emit(Opcode::Add1D, [x, scratch], [scratch])?,
        }
    }
    Ok(())
}

/// K-Means training iterations: a full distance matrix per iteration (the
/// 90.8 % IP share of Table 1), assignment/update approximated by
/// elementwise passes over the dataset (≈9 %), plus the small sort/count
/// tail. Symbols: `samples [n,d]`, `centroids [c,d]`.
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn kmeans_program(s: &MlSize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("samples", vec![s.samples, s.dims]);
    let c = b.alloc("centroids", vec![s.classes, s.dims]);
    let scratch = b.alloc("%scratch", vec![s.samples, s.dims]);
    let probe = b.alloc("%probe", vec![s.classes.max(2)]);
    for _ in 0..s.iters {
        // Assignment distances: IP-class work, 2·n·c·d ops.
        let d = b.apply(Opcode::Euclidian1D, [x, c])?;
        // Update step: ≈9 % of the iteration as elementwise passes.
        let passes = (s.classes / 14).max(2);
        eltwise_passes(&mut b, x, scratch, passes)?;
        // Convergence bookkeeping: tiny sorts/counts (the control tail).
        let dist_col = b.region(d[0]).clone().slice(1, 0, 1)?;
        let dist_col = Region::strided(
            dist_col.offset(),
            Shape::new(vec![s.classes.max(2).min(s.samples)]),
            vec![s.classes as u64],
        );
        let probe_r = b.region(probe).clone();
        b.push_raw(Instruction::new(
            Opcode::Sort1D,
            OpParams::None,
            vec![dist_col],
            vec![probe_r.clone()],
        )?);
        let count_out = b.alloc("%cnt", vec![1]);
        b.emit_with(
            Opcode::Count1D,
            OpParams::Count(CountParams::default()),
            [probe],
            [count_out],
        )?;
    }
    Ok(b.build())
}

/// LVQ training iterations: per-sample candidate distances (2 prototypes
/// per sample → 39.9 % IP) with prototype pulls/pushes as elementwise
/// passes over the dataset (59.8 % ELTW, Table 1).
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn lvq_program(s: &MlSize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("samples", vec![s.samples, s.dims]);
    let protos = b.alloc("prototypes", vec![2, s.dims]);
    let scratch = b.alloc("%scratch", vec![s.samples, s.dims]);
    for _ in 0..s.iters {
        // Candidate distances: 2·n·2·d ops of IP-class work.
        b.apply(Opcode::Euclidian1D, [x, protos])?;
        // Updates: 6 elementwise passes → 6·n·d ops, the 60/40 split.
        eltwise_passes(&mut b, x, scratch, 6)?;
    }
    Ok(b.build())
}

/// SVM training iterations: a kernel-matrix block per iteration against
/// `m` support vectors (99.3 % IP, "sufficiently operation-intensive" per
/// §6), a short elementwise tail and a pooling-style violator scan.
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn svm_program(s: &MlSize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("samples", vec![s.samples, s.dims]);
    let m = (s.samples / 256).clamp(2, 1024);
    let sv = b.alloc("support", vec![m, s.dims]);
    for _ in 0..s.iters {
        let kmat = b.apply(Opcode::Euclidian1D, [x, sv])?;
        // Kernel post-processing (exp/scale): elementwise on [n, m].
        let act = b.apply(Opcode::Act1D, [kmat[0]])?;
        // Violator scan: max-pooling over the kernel matrix.
        let k4 = b.alloc("%k4", vec![1, s.samples, m, 1]);
        let src = b.region(act[0]).clone();
        let dst = b.region(k4).clone();
        b.push_raw(Instruction::new(
            Opcode::Act1D,
            OpParams::Act(cf_isa::ActKind::Relu),
            vec![Region::contiguous(src.offset(), Shape::new(vec![1, s.samples, m, 1]))],
            vec![dst],
        )?);
        b.apply_with(Opcode::Max2D, OpParams::Pool(cf_isa::PoolParams::square(2, 2, 0)), [k4])?;
    }
    Ok(b.build())
}

/// K-NN as the Figure 15 *performance benchmark*: identical distance
/// pass, but per-query ranking uses top-k **selection** over a
/// distance-prefiltered candidate subset (1/64 of the samples), the way
/// high-performance k-NN implementations avoid full sorts; the exact
/// (functionally verified) formulation is [`knn_program`].
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn knn_benchmark_program(s: &MlSize, k: usize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let refs = b.alloc("refs", vec![s.samples, s.dims]);
    let labels = b.alloc("labels", vec![s.samples]);
    let queries = b.alloc("queries", vec![s.queries, s.dims]);
    let dist = b.apply(Opcode::Euclidian1D, [queries, refs])?;
    let cand = (s.samples / 64).max(4 * k).min(s.samples);
    let votes = b.alloc("votes", vec![s.queries, s.classes]);
    let sorted_d = b.alloc("%sd", vec![cand]);
    let sorted_l = b.alloc("%sl", vec![cand]);
    let dist_region = b.region(dist[0]).clone();
    let labels_region = b.region(labels).clone();
    let votes_region = b.region(votes).clone();
    for q in 0..s.queries {
        let row = dist_region.slice(0, q, 1)?;
        let row = Region::contiguous(row.offset(), Shape::new(vec![cand]));
        let lab = labels_region.slice(0, 0, cand)?;
        let sd = b.region(sorted_d).clone();
        let sl = b.region(sorted_l).clone();
        b.push_raw(Instruction::new(
            Opcode::Sort1D,
            OpParams::None,
            vec![row, lab],
            vec![sd, sl.clone()],
        )?);
        let topk = sl.slice(0, 0, k)?;
        for c in 0..s.classes.min(8) {
            let cell = votes_region.slice(0, q, 1)?.slice(1, c, 1)?;
            let cell = Region::contiguous(cell.offset(), Shape::scalar());
            b.push_raw(Instruction::new(
                Opcode::Count1D,
                OpParams::Count(CountParams { value: c as f32, tol: 0.1 }),
                vec![topk.clone()],
                vec![cell],
            )?);
        }
    }
    Ok(b.build())
}

/// K-Means as the Figure 15 performance benchmark: the full distance
/// matrix per iteration dominates the *flops*, while the assignment/update
/// step appears as a tail of per-centroid small-granularity elementwise
/// instructions — the control-bound behaviour §6 describes (Table 1\'s
/// large ELTW *time* share on a CPU corresponds to these small,
/// memory-bound operations, not to a large flop count).
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn kmeans_benchmark_program(s: &MlSize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("samples", vec![s.samples, s.dims]);
    let c = b.alloc("centroids", vec![s.classes, s.dims]);
    let upd = b.alloc("%upd", vec![s.classes, s.dims]);
    let c_region = b.region(c).clone();
    let upd_region = b.region(upd).clone();
    for _ in 0..s.iters {
        b.apply(Opcode::Euclidian1D, [x, c])?;
        // Per-centroid updates: 3 tiny elementwise ops on each [d] row.
        for cls in 0..s.classes {
            let row = |r: &Region| -> Result<Region, IsaError> {
                let sl = r.slice(0, cls, 1)?;
                Ok(Region::contiguous(sl.offset(), Shape::new(vec![s.dims])))
            };
            let (cr, ur) = (row(&c_region)?, row(&upd_region)?);
            for op in [Opcode::Sub1D, Opcode::Mul1D, Opcode::Add1D] {
                b.push_raw(Instruction::new(
                    op,
                    OpParams::None,
                    vec![cr.clone(), ur.clone()],
                    vec![ur.clone()],
                )?);
            }
        }
    }
    Ok(b.build())
}

/// LVQ as the Figure 15 performance benchmark: candidate distances plus a
/// *longer* tail of per-prototype small-granularity updates — the most
/// control-bound of the suite, which is why the paper finds it performs
/// even worse on Cambricon-F100 than on F1 relative to peak (§6).
///
/// # Errors
///
/// Propagates instruction-validation errors.
pub fn lvq_benchmark_program(s: &MlSize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let x = b.alloc("samples", vec![s.samples, s.dims]);
    let protos = b.alloc("prototypes", vec![s.classes, s.dims]);
    let upd = b.alloc("%upd", vec![s.classes, s.dims]);
    let p_region = b.region(protos).clone();
    let upd_region = b.region(upd).clone();
    // LVQ processes the dataset in sample batches; each batch pulls or
    // pushes prototypes with per-vector updates.
    let batches = 16;
    let batch_rows = s.samples / batches;
    let x_region = b.region(x).clone();
    for _ in 0..s.iters {
        for bi in 0..batches {
            let xb = x_region.slice(0, bi * batch_rows, batch_rows)?;
            let dist = b.alloc(format!("%d{bi}"), vec![batch_rows, s.classes]);
            let dist_region = b.region(dist).clone();
            b.push_raw(Instruction::new(
                Opcode::Euclidian1D,
                OpParams::None,
                vec![xb, p_region.clone()],
                vec![dist_region],
            )?);
            for cls in (0..s.classes).step_by(2) {
                let row = |r: &Region| -> Result<Region, IsaError> {
                    let sl = r.slice(0, cls, 1)?;
                    Ok(Region::contiguous(sl.offset(), Shape::new(vec![s.dims])))
                };
                let (pr, ur) = (row(&p_region)?, row(&upd_region)?);
                for op in [Opcode::Sub1D, Opcode::Mul1D, Opcode::Add1D] {
                    b.push_raw(Instruction::new(
                        op,
                        OpParams::None,
                        vec![pr.clone(), ur.clone()],
                        vec![ur.clone()],
                    )?);
                }
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_core::{Machine, MachineConfig};
    use cf_tensor::{gen::DataGen, Memory};

    #[test]
    fn knn_program_matches_native_reference() {
        let s = MlSize::small();
        let k = 5;
        let program = knn_program_with_candidates(&s, k, s.classes).unwrap();
        // Fill external memory.
        let mut mem = Memory::new(program.extern_elems() as usize);
        let mut g = DataGen::new(77);
        let (refs, labels) = g.clustered(s.samples, s.dims, s.classes);
        let queries = g.uniform(Shape::new(vec![s.queries, s.dims]), -4.0, 4.0);
        mem.write_region(program.symbol("refs").unwrap(), &refs).unwrap();
        mem.write_region(program.symbol("labels").unwrap(), &labels).unwrap();
        mem.write_region(program.symbol("queries").unwrap(), &queries).unwrap();

        let machine = Machine::new(MachineConfig::tiny(2, 2, 16 << 10));
        machine.run(&program, &mut mem).unwrap();

        let votes = mem.read_region(program.symbol("votes").unwrap()).unwrap();
        let expect = knn_reference(refs.data(), labels.data(), queries.data(), &s, k);
        for (q, row) in expect.iter().enumerate().take(s.queries) {
            for (c, &want) in row.iter().enumerate().take(s.classes) {
                assert_eq!(votes.get(&[q, c]) as u32, want, "vote mismatch at query {q} class {c}");
            }
        }
        // Every query casts exactly k votes.
        for q in 0..s.queries {
            let total: f32 = (0..s.classes).map(|c| votes.get(&[q, c])).sum();
            assert_eq!(total as usize, k);
        }
    }

    #[test]
    fn iterative_programs_execute_functionally() {
        let s = MlSize::small();
        for program in
            [kmeans_program(&s).unwrap(), lvq_program(&s).unwrap(), svm_program(&s).unwrap()]
        {
            let mut mem = Memory::new(program.extern_elems() as usize);
            let t = DataGen::new(5).uniform(
                Shape::new(vec![program.extern_elems() as usize]),
                -1.0,
                1.0,
            );
            mem.as_mut_slice().copy_from_slice(t.data());
            let machine = Machine::new(MachineConfig::tiny(1, 4, 32 << 10));
            machine.run(&program, &mut mem).unwrap();
        }
    }

    #[test]
    fn op_mix_matches_table1_shape() {
        use cf_ops::cost::flops;
        let s = MlSize { samples: 4096, dims: 64, classes: 128, queries: 16, iters: 2 };
        // K-Means: IP ≈ 90 %, ELTW ≈ 9 %.
        let p = kmeans_program(&s).unwrap();
        let mut ip = 0u64;
        let mut eltw = 0u64;
        let mut total = 0u64;
        for inst in p.instructions() {
            let f = flops(inst);
            total += f;
            match inst.op {
                Opcode::Euclidian1D => ip += f,
                Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D | Opcode::Act1D => eltw += f,
                _ => {}
            }
        }
        let ip_frac = ip as f64 / total as f64;
        let eltw_frac = eltw as f64 / total as f64;
        assert!((ip_frac - 0.908).abs() < 0.06, "kmeans IP {ip_frac:.3}");
        assert!((eltw_frac - 0.0908).abs() < 0.06, "kmeans ELTW {eltw_frac:.3}");

        // LVQ: ELTW ≈ 60 %, IP ≈ 40 %.
        let p = lvq_program(&s).unwrap();
        let (mut ip, mut eltw, mut total) = (0u64, 0u64, 0u64);
        for inst in p.instructions() {
            let f = flops(inst);
            total += f;
            match inst.op {
                Opcode::Euclidian1D => ip += f,
                Opcode::Add1D | Opcode::Sub1D | Opcode::Mul1D | Opcode::Act1D => eltw += f,
                _ => {}
            }
        }
        assert!((ip as f64 / total as f64 - 0.399).abs() < 0.05);
        assert!((eltw as f64 / total as f64 - 0.598).abs() < 0.05);
    }

    #[test]
    fn paper_sizes_are_table5() {
        let s = MlSize::paper();
        assert_eq!(s.samples, 262_144);
        assert_eq!(s.dims, 512);
        assert_eq!(s.classes, 128);
    }
}
