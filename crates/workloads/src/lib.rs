//! The paper's benchmark suite (Table 5) as FISA programs.
//!
//! * [`nets`] — layer-exact VGG-16, ResNet-152, AlexNet and a 3-layer MLP,
//!   compiled to FISA programs at any batch size;
//! * [`ml`] — K-NN, K-Means, LVQ and SVM over the paper's synthetic
//!   dataset (262 144 samples × 512 dimensions × 128 categories), plus the
//!   32768² MATMUL;
//! * [`profile`] — the Table 1 primitive-cost decomposition.
//!
//! # Examples
//!
//! ```
//! use cf_workloads::nets;
//!
//! let vgg = nets::vgg16();
//! // "1.38e8 params" (Table 5).
//! assert!((vgg.param_count() as f64 - 1.38e8).abs() / 1.38e8 < 0.01);
//! let program = nets::build_program(&vgg, 1).unwrap();
//! assert!(!program.instructions().is_empty());
//! ```

pub mod ml;
pub mod nets;
pub mod profile;
