//! Deep-network definitions with layer-exact shapes, compiled to FISA.
//!
//! The networks carry the paper's Table 5 characteristics: VGG-16 with
//! 1.38·10⁸ parameters and 3.09·10¹⁰ ops/image, ResNet-152 with 6.03·10⁷
//! parameters and 2.26·10¹⁰ ops/image (at 224×224 ImageNet shapes), plus
//! AlexNet and the 3-layer MLP used for Table 1.

use cf_isa::{
    ConvParams, IsaError, OpParams, Opcode, PoolParams, Program, ProgramBuilder, TensorHandle,
};

/// One network layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Layer {
    /// Convolution: `k×k` kernel, stride, padding, output channels,
    /// followed by ReLU.
    Conv {
        /// Kernel side.
        k: usize,
        /// Stride.
        s: usize,
        /// Padding.
        p: usize,
        /// Output channels.
        out_c: usize,
    },
    /// Max pooling with a square window.
    MaxPool {
        /// Window side.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Average pooling with a square window.
    AvgPool {
        /// Window side.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Local response normalisation (AlexNet).
    Lrn,
    /// Fully connected layer (flattens input), followed by ReLU except on
    /// the last layer.
    Fc {
        /// Output features.
        out: usize,
    },
    /// Start of a residual block: remember the current activation.
    ResSave,
    /// End of a residual block: add the saved activation (shapes must
    /// match), then ReLU.
    ResAdd,
}

/// A network: input shape plus a layer list.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDef {
    /// Network name.
    pub name: &'static str,
    /// Input `(height, width, channels)`.
    pub input: (usize, usize, usize),
    /// Layers in order.
    pub layers: Vec<Layer>,
}

impl NetDef {
    /// Total learnable parameters (weights only; biases are omitted in
    /// this reproduction, <0.1 % of parameters).
    pub fn param_count(&self) -> u64 {
        let (mut h, mut w, mut c) = self.input;
        let mut params = 0u64;
        for layer in &self.layers {
            match *layer {
                Layer::Conv { k, s, p, out_c } => {
                    params += (k * k * c * out_c) as u64;
                    h = (h + 2 * p - k) / s + 1;
                    w = (w + 2 * p - k) / s + 1;
                    c = out_c;
                }
                Layer::MaxPool { k, s } | Layer::AvgPool { k, s } => {
                    h = (h - k) / s + 1;
                    w = (w - k) / s + 1;
                }
                Layer::Fc { out } => {
                    params += (h * w * c * out) as u64;
                    h = 1;
                    w = 1;
                    c = out;
                }
                Layer::Lrn | Layer::ResSave | Layer::ResAdd => {}
            }
        }
        params
    }

    /// Arithmetic operations per image (MACs × 2 for conv/FC).
    pub fn ops_per_image(&self) -> u64 {
        let (mut h, mut w, mut c) = self.input;
        let mut ops = 0u64;
        for layer in &self.layers {
            match *layer {
                Layer::Conv { k, s, p, out_c } => {
                    let ho = (h + 2 * p - k) / s + 1;
                    let wo = (w + 2 * p - k) / s + 1;
                    ops += 2 * (ho * wo * out_c * k * k * c) as u64;
                    h = ho;
                    w = wo;
                    c = out_c;
                }
                Layer::MaxPool { k, s } | Layer::AvgPool { k, s } => {
                    let ho = (h - k) / s + 1;
                    let wo = (w - k) / s + 1;
                    ops += (ho * wo * c * k * k) as u64;
                    h = ho;
                    w = wo;
                }
                Layer::Fc { out } => {
                    ops += 2 * (h * w * c * out) as u64;
                    h = 1;
                    w = 1;
                    c = out;
                }
                Layer::Lrn => ops += (h * w * c * 14) as u64,
                Layer::ResSave => {}
                Layer::ResAdd => ops += (h * w * c) as u64,
            }
        }
        ops
    }
}

/// VGG-16 (Simonyan & Zisserman): 13 conv + 5 pools + 3 FC,
/// 1.38·10⁸ parameters.
pub fn vgg16() -> NetDef {
    let mut layers = Vec::new();
    let blocks: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (convs, ch) in blocks {
        for _ in 0..convs {
            layers.push(Layer::Conv { k: 3, s: 1, p: 1, out_c: ch });
        }
        layers.push(Layer::MaxPool { k: 2, s: 2 });
    }
    layers.push(Layer::Fc { out: 4096 });
    layers.push(Layer::Fc { out: 4096 });
    layers.push(Layer::Fc { out: 1000 });
    NetDef { name: "VGG-16", input: (224, 224, 3), layers }
}

/// ResNet-152 (He et al.): bottleneck blocks `[3, 8, 36, 3]`,
/// 6.0·10⁷ parameters. Projection shortcuts are folded into the main path
/// (the residual add uses the pre-block activation only when shapes
/// match, as in identity blocks).
pub fn resnet152() -> NetDef {
    let mut layers =
        vec![Layer::Conv { k: 7, s: 2, p: 3, out_c: 64 }, Layer::MaxPool { k: 2, s: 2 }];
    let stages: [(usize, usize); 4] = [(3, 64), (8, 128), (36, 256), (3, 512)];
    for (si, (blocks, width)) in stages.iter().enumerate() {
        for b in 0..*blocks {
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            let identity = b > 0;
            if identity {
                layers.push(Layer::ResSave);
            }
            layers.push(Layer::Conv { k: 1, s: stride, p: 0, out_c: *width });
            layers.push(Layer::Conv { k: 3, s: 1, p: 1, out_c: *width });
            layers.push(Layer::Conv { k: 1, s: 1, p: 0, out_c: width * 4 });
            if identity {
                layers.push(Layer::ResAdd);
            }
        }
    }
    layers.push(Layer::AvgPool { k: 7, s: 7 });
    layers.push(Layer::Fc { out: 1000 });
    NetDef { name: "ResNet-152", input: (224, 224, 3), layers }
}

/// AlexNet (Krizhevsky et al.), the Table 1 CNN.
pub fn alexnet() -> NetDef {
    NetDef {
        name: "AlexNet",
        input: (227, 227, 3),
        layers: vec![
            Layer::Conv { k: 11, s: 4, p: 0, out_c: 96 },
            Layer::Lrn,
            Layer::MaxPool { k: 3, s: 2 },
            Layer::Conv { k: 5, s: 1, p: 2, out_c: 256 },
            Layer::Lrn,
            Layer::MaxPool { k: 3, s: 2 },
            Layer::Conv { k: 3, s: 1, p: 1, out_c: 384 },
            Layer::Conv { k: 3, s: 1, p: 1, out_c: 384 },
            Layer::Conv { k: 3, s: 1, p: 1, out_c: 256 },
            Layer::MaxPool { k: 3, s: 2 },
            Layer::Fc { out: 4096 },
            Layer::Fc { out: 4096 },
            Layer::Fc { out: 1000 },
        ],
    }
}

/// The 3-layer MLP used as the Table 1 DNN.
pub fn mlp3() -> NetDef {
    NetDef {
        name: "MLP-3",
        input: (1, 1, 784),
        layers: vec![Layer::Fc { out: 2048 }, Layer::Fc { out: 2048 }, Layer::Fc { out: 10 }],
    }
}

/// Compiles a network into a FISA inference program at the given batch
/// size. Convolutions run as `Cv2D`+`Act1D`, FC layers as
/// `MatMul`+`Act1D`, pooling as `Max2D`/`Avg2D`, residual adds as `Add1D`.
///
/// # Errors
///
/// Propagates shape-inference errors (which would indicate an inconsistent
/// layer list).
pub fn build_program(net: &NetDef, batch: usize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let (h, w, c) = net.input;
    let mut act = b.alloc("input", vec![batch, h, w, c]);
    let mut saved: Option<TensorHandle> = None;
    let mut flat: Option<TensorHandle> = None;
    for (i, layer) in net.layers.iter().enumerate() {
        match *layer {
            Layer::Conv { k, s, p, out_c } => {
                let c_in = b.shape(act).dim(3);
                let wt = b.alloc(format!("w{i}"), vec![k, k, c_in, out_c]);
                let conv =
                    b.apply_with(Opcode::Cv2D, OpParams::Conv(ConvParams::same(s, p)), [act, wt])?;
                let relu = b.apply(Opcode::Act1D, [conv[0]])?;
                act = relu[0];
            }
            Layer::MaxPool { k, s } => {
                let out = b.apply_with(
                    Opcode::Max2D,
                    OpParams::Pool(PoolParams::square(k, s, 0)),
                    [act],
                )?;
                act = out[0];
            }
            Layer::AvgPool { k, s } => {
                let out = b.apply_with(
                    Opcode::Avg2D,
                    OpParams::Pool(PoolParams::square(k, s, 0)),
                    [act],
                )?;
                act = out[0];
            }
            Layer::Lrn => {
                let out = b.apply(Opcode::Lrn, [act])?;
                act = out[0];
            }
            Layer::Fc { out } => {
                // Flatten once: afterwards activations are [batch, features].
                let features: usize = if flat.is_none() {
                    let s = b.shape(act);
                    s.dims()[1..].iter().product()
                } else {
                    b.shape(act).dim(1)
                };
                let input2d = match flat {
                    Some(_) => act,
                    None => {
                        // Reinterpret the NHWC activation as [batch, f]: the
                        // data is already contiguous, so emit a fresh 2-D
                        // alias tensor and a copying Act1D is unnecessary —
                        // we just rebuild the handle via a raw instruction
                        // target below. Simplest correct route: an Act1D
                        // identity into a 2-D tensor is avoided by using
                        // MatMul's operand validation on a new alias.
                        let alias = b.alloc(format!("flat{i}"), vec![batch, features]);
                        // Copy activation into the alias (elementwise add
                        // with a zero tensor would be wasteful; use Act1D
                        // ReLU — activations are already post-ReLU, so ReLU
                        // is the identity on them).
                        let src = b.region(act).clone();
                        let dst = b.region(alias).clone();
                        let inst = cf_isa::Instruction::new(
                            Opcode::Act1D,
                            OpParams::Act(cf_isa::ActKind::Relu),
                            vec![cf_tensor::Region::contiguous(
                                src.offset(),
                                cf_tensor::Shape::new(vec![batch, features]),
                            )],
                            vec![dst],
                        )?;
                        b.push_raw(inst);
                        alias
                    }
                };
                let wt = b.alloc(format!("w{i}"), vec![features, out]);
                let mm = b.apply(Opcode::MatMul, [input2d, wt])?;
                let is_last = i + 1 == net.layers.len();
                act = if is_last { mm[0] } else { b.apply(Opcode::Act1D, [mm[0]])?[0] };
                flat = Some(act);
            }
            Layer::ResSave => saved = Some(act),
            Layer::ResAdd => {
                let skip = saved.take().expect("ResAdd without ResSave");
                let sum = b.apply(Opcode::Add1D, [act, skip])?;
                act = b.apply(Opcode::Act1D, [sum[0]])?[0];
            }
        }
    }
    Ok(b.build())
}

/// A small 3-D convolutional video-analysis network (the paper motivates
/// video analysis in §1 and provides `Cv3D` in Table 3): two Cv3D layers
/// with ReLU over a clip of `frames` frames.
///
/// # Errors
///
/// Propagates shape-inference errors.
pub fn video3d_program(batch: usize, frames: usize, hw: usize) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let clip = b.alloc("clip", vec![batch, frames, hw, hw, 3]);
    let w1 = b.alloc("w1", vec![3, 3, 3, 3, 16]);
    let c1 = b.apply_with(Opcode::Cv3D, OpParams::Conv(ConvParams::same(1, 1)), [clip, w1])?;
    let r1 = b.apply(Opcode::Act1D, [c1[0]])?;
    let w2 = b.alloc("w2", vec![3, 3, 3, 16, 32]);
    let c2 = b.apply_with(Opcode::Cv3D, OpParams::Conv(ConvParams::same(1, 1)), [r1[0], w2])?;
    b.apply(Opcode::Act1D, [c2[0]])?;
    Ok(b.build())
}

/// The 32768-order square MATMUL benchmark (Table 5), scaled by `order`
/// for tests.
pub fn matmul_program(order: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![order, order]);
    let w = b.alloc("w", vec![order, order]);
    b.apply(Opcode::MatMul, [a, w]).expect("square matmul is always valid");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_table5() {
        let net = vgg16();
        let params = net.param_count();
        assert!((params as f64 - 1.38e8).abs() / 1.38e8 < 0.01, "VGG-16 params {params}");
        let ops = net.ops_per_image();
        assert!((ops as f64 - 3.09e10).abs() / 3.09e10 < 0.02, "VGG-16 ops/image {ops}");
    }

    #[test]
    fn resnet152_matches_table5() {
        let net = resnet152();
        let params = net.param_count();
        assert!((params as f64 - 6.03e7).abs() / 6.03e7 < 0.07, "ResNet-152 params {params}");
        let ops = net.ops_per_image();
        assert!((ops as f64 - 2.26e10).abs() / 2.26e10 < 0.07, "ResNet-152 ops/image {ops}");
    }

    #[test]
    fn alexnet_conv_dominates() {
        // Table 1: CONV is ~94.7 % of AlexNet.
        let net = alexnet();
        let (mut h, mut w, mut c) = net.input;
        let mut conv = 0u64;
        let mut fc = 0u64;
        for layer in &net.layers {
            match *layer {
                Layer::Conv { k, s, p, out_c } => {
                    let ho = (h + 2 * p - k) / s + 1;
                    let wo = (w + 2 * p - k) / s + 1;
                    conv += 2 * (ho * wo * out_c * k * k * c) as u64;
                    h = ho;
                    w = wo;
                    c = out_c;
                }
                Layer::MaxPool { k, s } | Layer::AvgPool { k, s } => {
                    h = (h - k) / s + 1;
                    w = (w - k) / s + 1;
                }
                Layer::Fc { out } => {
                    fc += 2 * (h * w * c * out) as u64;
                    h = 1;
                    w = 1;
                    c = out;
                }
                _ => {}
            }
        }
        let frac = conv as f64 / (conv + fc) as f64;
        assert!((frac - 0.947).abs() < 0.02, "conv fraction {frac:.3}");
    }

    #[test]
    fn programs_build_at_small_batch() {
        for net in [vgg16(), resnet152(), alexnet(), mlp3()] {
            let p = build_program(&net, 1).unwrap();
            assert!(!p.instructions().is_empty(), "{} empty", net.name);
        }
    }

    #[test]
    fn resnet_has_residual_adds() {
        let p = build_program(&resnet152(), 1).unwrap();
        let adds = p.instructions().iter().filter(|i| i.op == Opcode::Add1D).count();
        // 50 blocks total, 46 identity blocks carry adds.
        assert!(adds >= 40, "only {adds} residual adds");
    }

    #[test]
    fn video3d_builds_and_uses_cv3d() {
        let p = video3d_program(1, 4, 8).unwrap();
        let cv3d = p.instructions().iter().filter(|i| i.op == Opcode::Cv3D).count();
        assert_eq!(cv3d, 2);
    }

    #[test]
    fn matmul_program_shape() {
        let p = matmul_program(128);
        assert_eq!(p.instructions().len(), 1);
        assert_eq!(p.extern_elems(), 3 * 128 * 128);
    }
}
