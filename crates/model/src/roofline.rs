//! The roofline model (Williams, Waterman, Patterson, CACM 2009) — the
//! analysis frame of the paper's Figure 15.

/// A machine roofline: peak arithmetic throughput and memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak throughput in ops/s.
    pub peak_ops: f64,
    /// Memory bandwidth in bytes/s.
    pub bw_bytes: f64,
}

impl Roofline {
    /// A roofline from peak ops/s and bytes/s.
    pub fn new(peak_ops: f64, bw_bytes: f64) -> Self {
        Roofline { peak_ops, bw_bytes }
    }

    /// Attainable throughput at operational intensity `oi` (ops/byte).
    pub fn attainable(&self, oi: f64) -> f64 {
        (self.bw_bytes * oi).min(self.peak_ops)
    }

    /// The ridge point: the operational intensity beyond which the machine
    /// is compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_ops / self.bw_bytes
    }

    /// Whether a kernel of intensity `oi` is memory-bound on this machine.
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge()
    }
}

/// One measured kernel plotted on a roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label (benchmark name).
    pub name: String,
    /// Operational intensity in ops/byte.
    pub oi: f64,
    /// Attained throughput in ops/s.
    pub attained_ops: f64,
}

impl RooflinePoint {
    /// Fraction of the roofline bound actually attained at this intensity.
    pub fn bound_fraction(&self, roof: &Roofline) -> f64 {
        self.attained_ops / roof.attainable(self.oi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_separates_regimes() {
        let r = Roofline::new(10e12, 500e9);
        assert!((r.ridge() - 20.0).abs() < 1e-9);
        assert!(r.is_memory_bound(10.0));
        assert!(!r.is_memory_bound(30.0));
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let r = Roofline::new(10e12, 500e9);
        assert_eq!(r.attainable(10.0), 5e12);
        assert_eq!(r.attainable(1000.0), 10e12);
    }

    #[test]
    fn bound_fraction() {
        let r = Roofline::new(10e12, 500e9);
        let p = RooflinePoint { name: "x".into(), oi: 40.0, attained_ops: 5e12 };
        assert!((p.bound_fraction(&r) - 0.5).abs() < 1e-12);
    }
}
