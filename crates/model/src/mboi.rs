//! Memory-Bounded Operational Intensity (paper §3.6, Figure 10).
//!
//! `MBOI(M)` gives the operational intensity a node can sustain towards
//! its parent when its local memory holds `M` bytes. For blocked
//! operations it rises like `√M` (a t×t×t matrix tile holds `12 t²` bytes
//! and performs `2 t³` ops); for streaming operations it is flat. The
//! paper sizes every level by `M ≈ MBOI⁻¹(peak / bandwidth)`.

use cf_core::perf::PerfSim;
use cf_core::{CoreError, MachineConfig};
use cf_isa::{Opcode, ProgramBuilder};

/// Kernels whose MBOI curves Figure 10 shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MboiKernel {
    /// Dense matrix multiplication (blocked, `OI ∝ √M`).
    MatMul,
    /// 2-D convolution (blocked over features/spatial, `OI ∝ √M` with a
    /// kernel-bounded cap).
    Conv2D,
    /// Elementwise/streaming operations (flat OI).
    EltWise,
}

/// Theoretical `MBOI(M)` in ops/byte for a node with `mem_bytes` of local
/// storage.
pub fn theoretical(kernel: MboiKernel, mem_bytes: u64) -> f64 {
    let m = mem_bytes as f64;
    match kernel {
        // Tile t×t×t: 3 t² f32 values resident, 2 t³ ops, 12 t² bytes moved.
        MboiKernel::MatMul => {
            let t = (m / 12.0).sqrt();
            t / 6.0
        }
        // Convolution reuses both weights and overlapping activations;
        // blocking follows the same square-root law at roughly half the
        // matmul constant, capped by the total weight-reuse available
        // (window size × channels ≈ 3·3·64 here).
        MboiKernel::Conv2D => {
            let t = (m / 12.0).sqrt();
            (t / 12.0).min(2.0 * 3.0 * 3.0 * 64.0)
        }
        // One op per three 4-byte operands.
        MboiKernel::EltWise => 1.0 / 12.0,
    }
}

/// Inverse of the matmul MBOI: the memory needed to sustain intensity
/// `oi` — the paper's node-sizing rule.
pub fn inverse_matmul(oi: f64) -> u64 {
    // oi = sqrt(M/12)/6  ⇒  M = 12 (6·oi)².
    (12.0 * (6.0 * oi).powi(2)).ceil() as u64
}

/// Measures `MBOI(M)` on the simulator: a single FMP-style node with
/// `mem_bytes` of local memory and `fanout` leaf cores runs a blocked
/// kernel, and the intensity is its useful ops divided by the traffic it
/// drew from its parent.
///
/// # Errors
///
/// Propagates simulator planning errors.
pub fn measured(kernel: MboiKernel, mem_bytes: u64, fanout: usize) -> Result<f64, CoreError> {
    let mut cfg = MachineConfig::tiny(2, fanout, mem_bytes);
    // Root: a large card feeding the node under test.
    cfg.levels[0].mem_bytes = 8 << 30;
    cfg.levels[0].fanout = 1;
    cfg.levels[0].bw_bytes = 512e9;
    cfg.levels[1].mem_bytes = mem_bytes;
    cfg.levels[1].lfu_lanes = 16;
    cfg.leaf = MachineConfig::paper_core();

    let mut b = ProgramBuilder::new();
    // Work several times larger than the node memory, so blocking matters.
    let side = (((mem_bytes as f64 / 4.0).sqrt() as usize).max(64) * 4).min(4096);
    let program = match kernel {
        MboiKernel::MatMul => {
            let a = b.alloc("a", vec![side, side]);
            let w = b.alloc("w", vec![side, side]);
            b.apply(Opcode::MatMul, [a, w])?;
            b.build()
        }
        MboiKernel::Conv2D => {
            let hw = (side / 8).clamp(16, 128);
            let x = b.alloc("x", vec![8, hw, hw, 64]);
            let w = b.alloc("w", vec![3, 3, 64, 64]);
            b.apply_with(
                Opcode::Cv2D,
                cf_isa::OpParams::Conv(cf_isa::ConvParams::same(1, 1)),
                [x, w],
            )?;
            b.build()
        }
        MboiKernel::EltWise => {
            let n = (mem_bytes as usize) * 4;
            let x = b.alloc("x", vec![n]);
            let y = b.alloc("y", vec![n]);
            b.apply(Opcode::Add1D, [x, y])?;
            b.build()
        }
    };
    let sim = PerfSim::new(&cfg);
    let out = sim.simulate(&program)?;
    let traffic = out.stats.levels.get(1).map(|l| l.dma_bytes).unwrap_or(0).max(1);
    // Useful work includes LFU-routed elementwise operations.
    let flops: u64 = program.instructions().iter().map(cf_ops::cost::flops).sum();
    Ok(flops as f64 / traffic as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_matmul_rises_with_memory() {
        let small = theoretical(MboiKernel::MatMul, 256 << 10);
        let big = theoretical(MboiKernel::MatMul, 8 << 20);
        assert!(big > small * 3.0, "√M law: {small} vs {big}");
    }

    #[test]
    fn theoretical_eltwise_is_flat() {
        assert_eq!(
            theoretical(MboiKernel::EltWise, 1 << 10),
            theoretical(MboiKernel::EltWise, 1 << 30)
        );
    }

    #[test]
    fn inverse_roundtrips() {
        let m = inverse_matmul(50.0);
        let oi = theoretical(MboiKernel::MatMul, m);
        assert!((oi - 50.0).abs() / 50.0 < 0.05, "got {oi}");
    }

    #[test]
    fn measured_matmul_rises_with_memory() {
        let small = measured(MboiKernel::MatMul, 1 << 20, 8).unwrap();
        let big = measured(MboiKernel::MatMul, 16 << 20, 8).unwrap();
        assert!(big > small * 1.5, "measured MBOI should grow with memory: {small:.1} vs {big:.1}");
    }

    #[test]
    fn measured_eltwise_is_low_and_flat() {
        let a = measured(MboiKernel::EltWise, 1 << 20, 8).unwrap();
        assert!(a < 1.0, "eltwise OI should be below 1 op/byte, got {a}");
    }
}
