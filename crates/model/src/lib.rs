//! Analytical models for the Cambricon-F evaluation.
//!
//! * [`roofline`] — the roofline performance model (Williams et al.) used
//!   throughout Figure 15;
//! * [`mboi`] — Memory-Bounded Operational Intensity (paper §3.6,
//!   Figure 10): how operational intensity scales with local-memory size,
//!   and the memory-sizing rule `M ≈ MBOI⁻¹(peak/bandwidth)`;
//! * [`area`] / [`energy`] — parametric layout models calibrated against
//!   the paper's published Table 7 numbers (the DESTINY/Synopsys
//!   substitute, see DESIGN.md §1);
//! * [`gpu`] — roofline-based baselines for GTX-1080Ti and DGX-1 plus the
//!   DaDianNao/TPU comparison rows of Table 8;
//! * [`survey`] — the historical data series behind Figures 1 and 16;
//! * [`designspace`] — the Table 4 hierarchy exploration.

pub mod area;
pub mod designspace;
pub mod energy;
pub mod gpu;
pub mod mboi;
pub mod roofline;
pub mod survey;
