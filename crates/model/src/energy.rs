//! Parametric 45-nm power model, calibrated to Table 7/8 (the
//! DESTINY/Synopsys substitute; DESIGN.md §1).
//!
//! Anchors: a leaf core draws 75.18 mW at full load; a Cambricon-F1 chip
//! 4.935 W; a Cambricon-F100 chip 42.873 W; a Cambricon-F1 computing card
//! 90.19 W (chip + 32 GB card DRAM). Solving the node equation against the
//! two chip anchors gives ≈5 mW/MiB of eDRAM, ≈16 mW per child port,
//! ≈3.5 mW per GB/s of local-memory bandwidth and ≈12 mW per LFU lane.

use cf_core::MachineConfig;

/// Leaf-core full-load power in watts (Table 7).
pub const CORE_W: f64 = 0.07518;

/// eDRAM power per MiB in watts.
pub const MEM_W_PER_MIB: f64 = 0.005;

/// Power per child port (decoder/interconnect) in watts.
pub const PER_CHILD_W: f64 = 0.0158;

/// Power of the local-memory subsystem per GB/s of bandwidth in watts.
pub const PER_GBPS_W: f64 = 0.0035;

/// Power per LFU lane in watts.
pub const LFU_LANE_W: f64 = 0.012;

/// Off-die DRAM subsystem power per GB/s of bandwidth in watts
/// (calibrated so a 512 GB/s 32 GB card draws ≈85 W).
pub const DRAM_W_PER_GBPS: f64 = 0.1665;

/// Full-load power of one inner node (excluding children), in watts.
pub fn node_w(mem_bytes: u64, fanout: usize, lfu_lanes: usize, bw_bytes: f64) -> f64 {
    let mem_mib = mem_bytes as f64 / (1 << 20) as f64;
    mem_mib * MEM_W_PER_MIB
        + fanout as f64 * PER_CHILD_W
        + bw_bytes / 1e9 * PER_GBPS_W
        + lfu_lanes as f64 * LFU_LANE_W
}

/// Full-load silicon power of every level at or below `from_level`, in
/// watts. DRAM-class levels (≥ 1 GiB) contribute their off-die memory
/// subsystem via [`DRAM_W_PER_GBPS`] instead of the eDRAM term.
pub fn subtree_w(cfg: &MachineConfig, from_level: usize) -> f64 {
    let mut power = 0.0;
    let mut nodes = 1.0;
    for level in cfg.levels.iter().skip(from_level) {
        if level.mem_bytes >= (1 << 30) {
            power += nodes
                * (level.bw_bytes / 1e9 * DRAM_W_PER_GBPS
                    + level.fanout as f64 * PER_CHILD_W
                    + level.lfu_lanes as f64 * LFU_LANE_W);
        } else {
            power += nodes * node_w(level.mem_bytes, level.fanout, level.lfu_lanes, level.bw_bytes);
        }
        nodes *= level.fanout as f64;
    }
    power + nodes * CORE_W
}

/// Full-load (peak) power of the whole machine in watts, including off-die
/// DRAM subsystems.
pub fn machine_peak_w(cfg: &MachineConfig) -> f64 {
    subtree_w(cfg, 0)
}

/// Average power while running a workload attaining `peak_fraction` of
/// peak: half the budget is utilisation-independent (clock trees, leakage,
/// refresh), half scales with activity — the split that reproduces the
/// paper's measured card powers.
pub fn run_w(peak_w: f64, peak_fraction: f64) -> f64 {
    peak_w * (0.5 + 0.5 * peak_fraction.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_chip_power_matches_table7() {
        let cfg = MachineConfig::cambricon_f1();
        let w = subtree_w(&cfg, 1);
        let paper = 4.93532;
        assert!((w - paper).abs() / paper < 0.10, "F1 chip {w:.3} W vs paper {paper}");
    }

    #[test]
    fn f100_chip_power_matches_table7() {
        let cfg = MachineConfig::cambricon_f100();
        let w = subtree_w(&cfg, 2);
        let paper = 42.87306;
        assert!((w - paper).abs() / paper < 0.10, "F100 chip {w:.3} W vs paper {paper}");
    }

    #[test]
    fn f1_card_power_matches_table8() {
        // Card = chip silicon + the 32 GB / 512 GB/s card DRAM subsystem.
        let cfg = MachineConfig::cambricon_f1();
        let w = machine_peak_w(&cfg);
        let paper = 90.19;
        assert!((w - paper).abs() / paper < 0.10, "F1 card {w:.2} W vs paper {paper}");
    }

    #[test]
    fn run_power_scales_with_utilisation() {
        assert!(run_w(100.0, 1.0) > run_w(100.0, 0.2));
        assert_eq!(run_w(100.0, 1.0), 100.0);
        assert_eq!(run_w(100.0, 0.0), 50.0);
    }

    #[test]
    fn chip_efficiency_matches_table8() {
        // F1 chip: 14.9 Tops / 4.94 W ≈ 3.02 Tops/W.
        let cfg = MachineConfig::cambricon_f1();
        let eff = cfg.peak_ops() / 1e12 / subtree_w(&cfg, 1);
        assert!((eff - 3.02).abs() < 0.45, "Tops/W {eff:.2}");
    }
}
