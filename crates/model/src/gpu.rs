//! GPU and ASIC baselines (the physical-hardware substitute; DESIGN.md §1).
//!
//! The paper measures an NVIDIA GTX-1080Ti and a DGX-1 (8× V100) with
//! nvprof/nvidia-smi. Without the hardware, each baseline is modelled as a
//! roofline plus two mechanisms the paper's §6–7 analysis identifies:
//!
//! 1. an **operational-intensity ceiling** from the tiny programmable
//!    local store (96 KB shared memory vs Cambricon-F's 8 MB FMP storage,
//!    §6) — the same `√M` MBOI law as [`crate::mboi`];
//! 2. a **per-workload efficiency factor** capturing control flow, kernel
//!    launch overhead and batch-size limits, calibrated against the
//!    attained-performance points the paper reports in Figure 15.
//!
//! The calibration constants are data taken *from the paper's own
//! measurements*, so the comparison reproduces the published shape; they
//! are not predictions of this model.

/// Identifying characteristics of a comparison chip (Table 8).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Chip name.
    pub name: &'static str,
    /// ISA style (Table 8 row 1).
    pub isa: &'static str,
    /// Process node in nm.
    pub tech_nm: u32,
    /// On-chip memory type.
    pub mem_type: &'static str,
    /// On-chip memory in MiB.
    pub mem_mib: f64,
    /// Peak throughput in Tops.
    pub peak_tops: f64,
    /// Die area in mm² (`None` if undisclosed).
    pub area_mm2: Option<f64>,
    /// Chip power in watts (`None` if undisclosed).
    pub power_w: Option<f64>,
    /// Card DRAM in GiB (`None` for chip-only rows).
    pub dram_gib: Option<f64>,
    /// Card power in watts.
    pub card_power_w: Option<f64>,
    /// Card memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Programmable per-core local store in KiB (shared memory for GPUs).
    pub local_store_kib: f64,
}

/// GTX-1080Ti (Table 8 and §5 "GPUs").
pub fn gtx_1080ti() -> ChipSpec {
    ChipSpec {
        name: "GTX-1080Ti",
        isa: "SIMD",
        tech_nm: 16,
        mem_type: "SRAM",
        mem_mib: 12.8,
        peak_tops: 10.6,
        area_mm2: Some(471.0),
        power_w: None,
        dram_gib: Some(11.0),
        card_power_w: Some(199.9),
        mem_bw_gbps: 484.0,
        local_store_kib: 96.0,
    }
}

/// Tesla V100-SXM2 (one of DGX-1's eight GPUs).
pub fn v100() -> ChipSpec {
    ChipSpec {
        name: "V100",
        isa: "SIMD",
        tech_nm: 12,
        mem_type: "SRAM",
        mem_mib: 33.5,
        peak_tops: 125.0,
        area_mm2: Some(815.0),
        power_w: None,
        dram_gib: Some(16.0),
        card_power_w: Some(248.32),
        mem_bw_gbps: 900.0,
        local_store_kib: 96.0,
    }
}

/// DaDianNao (Table 8).
pub fn dadiannao() -> ChipSpec {
    ChipSpec {
        name: "DaDN",
        isa: "VLIW",
        tech_nm: 28,
        mem_type: "eDRAM",
        mem_mib: 36.0,
        peak_tops: 5.58,
        area_mm2: Some(67.0),
        power_w: Some(15.97),
        dram_gib: None,
        card_power_w: None,
        mem_bw_gbps: 0.0,
        local_store_kib: 0.0,
    }
}

/// Google TPU-1 (Table 8).
pub fn tpu() -> ChipSpec {
    ChipSpec {
        name: "TPU",
        isa: "CISC",
        tech_nm: 28,
        mem_type: "SRAM",
        mem_mib: 28.0,
        peak_tops: 92.0,
        area_mm2: Some(331.0),
        power_w: Some(40.0),
        dram_gib: Some(8.0),
        card_power_w: None,
        mem_bw_gbps: 34.0,
        local_store_kib: 0.0,
    }
}

/// A whole GPU system under comparison (one card, or the 8-GPU DGX-1).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSystem {
    /// System name.
    pub name: &'static str,
    /// Chip spec of each GPU.
    pub chip: ChipSpec,
    /// Number of GPUs.
    pub count: usize,
    /// Host-to-device bandwidth in GB/s (measured 84.24 for DGX-1, §5).
    pub host_bw_gbps: f64,
}

impl GpuSystem {
    /// The single-card 1080Ti system of Figure 15(a).
    pub fn gtx_1080ti() -> Self {
        GpuSystem { name: "GTX-1080Ti", chip: gtx_1080ti(), count: 1, host_bw_gbps: 15.8 }
    }

    /// The DGX-1 of Figure 15(b): 8 × V100.
    pub fn dgx1() -> Self {
        GpuSystem { name: "DGX-1", chip: v100(), count: 8, host_bw_gbps: 84.24 }
    }

    /// System peak in ops/s.
    pub fn peak_ops(&self) -> f64 {
        self.chip.peak_tops * 1e12 * self.count as f64
    }

    /// Aggregate graphics-memory bandwidth in bytes/s — the system
    /// bottleneck per the paper's §6 ("the bottleneck of GPU system is
    /// between graphic memories and chips").
    pub fn mem_bw_bytes(&self) -> f64 {
        self.chip.mem_bw_gbps * 1e9 * self.count as f64
    }

    /// Roofline of the system against graphics memory.
    pub fn roofline(&self) -> crate::roofline::Roofline {
        crate::roofline::Roofline::new(self.peak_ops(), self.mem_bw_bytes())
    }

    /// Average system power while running ML workloads (the paper's
    /// measured card powers: 199.9 W for 1080Ti, 1986.5 W for 8 V100s).
    pub fn run_power_w(&self) -> f64 {
        match self.name {
            "DGX-1" => 1986.5,
            _ => self.chip.card_power_w.unwrap_or(200.0) * self.count as f64,
        }
    }
}

/// Per-workload behaviour of a GPU system: operational intensity against
/// graphics memory and the fraction of the roofline bound attained.
///
/// Values are calibrated against the paper's Figure 15 / §6 measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuWorkloadPoint {
    /// Operational intensity in ops/byte.
    pub oi: f64,
    /// Fraction of `min(peak, bw·oi)` attained.
    pub efficiency: f64,
}

/// The benchmark names of Table 5, in canonical order.
pub const BENCHMARKS: [&str; 7] =
    ["VGG-16", "ResNet-152", "K-NN", "K-Means", "LVQ", "SVM", "MATMUL"];

impl GpuSystem {
    /// The calibrated workload point for one of the Table 5 benchmarks
    /// (paper-measured). Returns `None` for unknown names.
    pub fn workload_point(&self, benchmark: &str) -> Option<GpuWorkloadPoint> {
        let p = match (self.name, benchmark) {
            // GTX-1080Ti, Figure 15(a): ridge = 10.6e12/484e9 ≈ 21.9.
            ("GTX-1080Ti", "VGG-16") => GpuWorkloadPoint { oi: 55.0, efficiency: 0.52 },
            ("GTX-1080Ti", "ResNet-152") => GpuWorkloadPoint { oi: 35.0, efficiency: 0.42 },
            ("GTX-1080Ti", "K-NN") => GpuWorkloadPoint { oi: 60.0, efficiency: 0.55 },
            ("GTX-1080Ti", "K-Means") => GpuWorkloadPoint { oi: 9.0, efficiency: 0.12 },
            ("GTX-1080Ti", "LVQ") => GpuWorkloadPoint { oi: 5.0, efficiency: 0.009 },
            ("GTX-1080Ti", "SVM") => GpuWorkloadPoint { oi: 40.0, efficiency: 0.45 },
            // The 32768-order matrices (12.9 GB) exceed the card's 11 GB
            // DRAM, forcing PCIe staging — the paper's F1 advantage on
            // MATMUL (1.42x) despite only 40.6% higher peak.
            ("GTX-1080Ti", "MATMUL") => GpuWorkloadPoint { oi: 100.0, efficiency: 0.45 },
            // DGX-1, Figure 15(b): ridge = 1000e12/7200e9 ≈ 139 — deep
            // nets sit left of the ridge; the iterative ML kernels keep
            // intermediates in HBM (up to 85× higher OI than F100, §6)
            // but suffer from control flow.
            // Efficiencies reflect the paper's end-to-end TensorFlow/
            // TensorRT measurements across 8 GPUs ("DGX-1 has still shown
            // a significant gap between attained performance and the
            // roofline", §6): NCCL/host coordination, kernel-launch
            // latency and fp32 classic-ML kernels keep the system far
            // from its fp16 tensor-core roofline.
            ("DGX-1", "VGG-16") => GpuWorkloadPoint { oi: 75.0, efficiency: 0.17 },
            ("DGX-1", "ResNet-152") => GpuWorkloadPoint { oi: 50.0, efficiency: 0.097 },
            ("DGX-1", "K-NN") => GpuWorkloadPoint { oi: 300.0, efficiency: 0.0086 },
            ("DGX-1", "K-Means") => GpuWorkloadPoint { oi: 60.0, efficiency: 0.017 },
            ("DGX-1", "LVQ") => GpuWorkloadPoint { oi: 40.0, efficiency: 0.0023 },
            ("DGX-1", "SVM") => GpuWorkloadPoint { oi: 250.0, efficiency: 0.033 },
            ("DGX-1", "MATMUL") => GpuWorkloadPoint { oi: 200.0, efficiency: 0.216 },
            _ => return None,
        };
        Some(p)
    }

    /// Attained throughput on a benchmark in ops/s.
    pub fn attained_ops(&self, benchmark: &str) -> Option<f64> {
        let p = self.workload_point(benchmark)?;
        Some(self.roofline().attainable(p.oi) * p.efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_static_rows() {
        assert_eq!(gtx_1080ti().area_mm2, Some(471.0));
        assert_eq!(v100().peak_tops, 125.0);
        assert_eq!(dadiannao().isa, "VLIW");
        assert_eq!(tpu().power_w, Some(40.0));
    }

    #[test]
    fn dgx_peak_is_one_petaop() {
        let dgx = GpuSystem::dgx1();
        assert!((dgx.peak_ops() - 1000e12).abs() < 1e9);
        assert!((dgx.host_bw_gbps - 84.24).abs() < 1e-9);
    }

    #[test]
    fn every_benchmark_has_points_on_both_systems() {
        for sys in [GpuSystem::gtx_1080ti(), GpuSystem::dgx1()] {
            for b in BENCHMARKS {
                let a = sys.attained_ops(b).unwrap();
                assert!(a > 0.0 && a <= sys.peak_ops());
            }
        }
        assert!(GpuSystem::dgx1().attained_ops("nope").is_none());
    }

    #[test]
    fn control_bound_kernels_are_slowest() {
        let g = GpuSystem::gtx_1080ti();
        let lvq = g.attained_ops("LVQ").unwrap();
        let mm = g.attained_ops("MATMUL").unwrap();
        assert!(mm / lvq > 50.0, "LVQ should be orders of magnitude slower");
    }
}
