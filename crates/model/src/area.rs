//! Parametric 45-nm area model, calibrated to the paper's Table 7 layout
//! numbers (the Synopsys place-and-route substitute; DESIGN.md §1).
//!
//! Calibration anchors:
//!
//! * a leaf core is 0.4263 mm² (0.2016 mm² of eDRAM, the rest MAC matrix,
//!   registers and control) at 0.465 Tops;
//! * a Cambricon-F1 chip (one FMP: 32 cores + 8 MB eDRAM + controller) is
//!   29.206 mm²;
//! * a Cambricon-F100 chip (8 FMPs + 256 MB eDRAM + controller) is
//!   415.1 mm².
//!
//! Solving those constraints gives ≈0.68 mm²/MB for large eDRAM arrays and
//! ≈10 mm² of controller/interconnect per 32-way node.

use cf_core::MachineConfig;

/// Leaf-core area in mm² (Table 7, "Core").
pub const CORE_MM2: f64 = 0.4263;

/// Large-array eDRAM density in mm² per MiB at 45 nm.
pub const EDRAM_MM2_PER_MIB: f64 = 0.68;

/// Controller base area per node in mm².
pub const NODE_BASE_MM2: f64 = 0.7;

/// Interconnect/decoder area per child in mm².
pub const NODE_PER_CHILD_MM2: f64 = 0.22;

/// Area per LFU lane in mm².
pub const LFU_LANE_MM2: f64 = 0.15;

/// Area of one inner node (its local memory, controller, LFUs and wiring —
/// excluding its children).
pub fn node_mm2(mem_bytes: u64, fanout: usize, lfu_lanes: usize) -> f64 {
    mem_bytes as f64 / (1 << 20) as f64 * EDRAM_MM2_PER_MIB
        + NODE_BASE_MM2
        + NODE_PER_CHILD_MM2 * fanout as f64
        + LFU_LANE_MM2 * lfu_lanes as f64
}

/// Total silicon area of every level at or below `from_level` of a
/// machine, in mm². Level 0 with a DRAM-class memory (≥ 1 GiB) contributes
/// only its controller: commodity DRAM is off-die.
pub fn subtree_mm2(cfg: &MachineConfig, from_level: usize) -> f64 {
    let mut area = 0.0;
    let mut nodes = 1.0;
    for (i, level) in cfg.levels.iter().enumerate().skip(from_level) {
        let mem_on_die = if level.mem_bytes >= (1 << 30) { 0 } else { level.mem_bytes };
        area += nodes * node_mm2(mem_on_die, level.fanout, level.lfu_lanes);
        nodes *= level.fanout as f64;
        let _ = i;
    }
    area + nodes * CORE_MM2
}

/// Convenience: whole-machine silicon area.
pub fn machine_mm2(cfg: &MachineConfig) -> f64 {
    subtree_mm2(cfg, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_chip_area_matches_table7() {
        // F1 silicon = the FMP level down (the 32 GB card DRAM is off-die).
        let cfg = MachineConfig::cambricon_f1();
        let area = subtree_mm2(&cfg, 1);
        let paper = 29.206;
        assert!((area - paper).abs() / paper < 0.10, "F1 chip area {area:.1} mm² vs paper {paper}");
    }

    #[test]
    fn f100_chip_area_matches_table7() {
        // An F100 chip = the Chip level of the F100 hierarchy.
        let cfg = MachineConfig::cambricon_f100();
        let area = subtree_mm2(&cfg, 2);
        let paper = 415.1;
        assert!(
            (area - paper).abs() / paper < 0.10,
            "F100 chip area {area:.1} mm² vs paper {paper}"
        );
    }

    #[test]
    fn dram_levels_are_off_die() {
        let cfg = MachineConfig::cambricon_f1();
        let with_card = machine_mm2(&cfg);
        let chip_only = subtree_mm2(&cfg, 1);
        // The card level adds only its controller, not 32 GB of "eDRAM".
        assert!(with_card - chip_only < 5.0);
    }

    #[test]
    fn core_area_is_anchor() {
        assert!((CORE_MM2 - 0.4263).abs() < 1e-9);
    }
}
