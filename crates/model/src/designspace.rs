//! Hierarchy design-space exploration (paper Table 4).
//!
//! The paper compares four Cambricon-F designs of identical capability
//! (512 cores × 0.465 Tops ≈ 238 Tops) but different depth, sizing each
//! node's memory with the MBOI rule `M ≈ MBOI_Ref⁻¹(peak/bandwidth)`.
//!
//! Sizing model (documented substitution, DESIGN.md §1): the reference
//! MBOI curve is fitted to the paper's own two design points — an 8 MiB
//! FMP sustains OI ≈ 29 and the flat design's node needs a multi-GiB
//! memory for OI ≈ 465 — giving `MBOI_Ref(M) = 29 · (M / 8 MiB)^0.4`.
//! Bandwidth demand of a child is its peak divided by the *matmul*
//! theoretical MBOI of its own memory. Levels whose sized memory exceeds
//! 256 MiB would be off-die DRAM — except a level that feeds leaf cores,
//! which must stay on die: that is exactly what makes the flat design's
//! area and power explode.

use cf_core::perf::PerfSim;
use cf_core::{CoreError, LevelSpec, MachineConfig};
use cf_isa::Program;

use crate::mboi::{self, MboiKernel};
use crate::{area, energy};

/// One hierarchy design: fan-outs per inner level (the root computing-card
/// DRAM level is implicit). `[512]` is the flat design; `[2, 8, 32]` is
/// "1-2-16-512".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Paper-style node-count name ("1-2-16-512").
    pub name: String,
    /// Fan-out of each inner level, top first.
    pub fanouts: Vec<usize>,
}

impl Design {
    /// A design from its fan-out list, named in the paper's node-count
    /// style.
    pub fn new(fanouts: Vec<usize>) -> Self {
        let mut counts = vec![1u64];
        for &f in &fanouts {
            counts.push(counts.last().unwrap() * f as u64);
        }
        let name = counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("-");
        Design { name, fanouts }
    }

    /// Total leaf cores.
    pub fn cores(&self) -> u64 {
        self.fanouts.iter().map(|&f| f as u64).product()
    }
}

/// The four designs of Table 4 (all 512 cores).
pub fn table4_designs() -> Vec<Design> {
    vec![
        Design::new(vec![512]),
        Design::new(vec![2, 8, 32]),
        Design::new(vec![4, 4, 32]),
        Design::new(vec![4, 4, 4, 8]),
    ]
}

/// The reference MBOI curve fitted to the paper's design points, ops/byte.
pub fn mboi_ref(mem_bytes: u64) -> f64 {
    29.0 * (mem_bytes as f64 / (8u64 << 20) as f64).powf(0.4)
}

/// Inverse of [`mboi_ref`]: bytes of memory to sustain intensity `oi`.
pub fn mboi_ref_inverse(oi: f64) -> u64 {
    ((8u64 << 20) as f64 * (oi / 29.0).powf(2.5)).ceil() as u64
}

/// Builds the simulatable machine for a design: an implicit 32 GiB /
/// 512 GB/s computing-card DRAM root above the design's inner levels,
/// memories sized by the MBOI rule and bandwidths by child demand.
pub fn build_config(design: &Design) -> MachineConfig {
    let leaf = MachineConfig::paper_core();
    let core_demand = leaf.mac_ops / mboi::theoretical(MboiKernel::MatMul, leaf.mem_bytes).max(1.0);
    let mut levels = vec![LevelSpec {
        name: "Card".into(),
        fanout: design.fanouts[0],
        lfu_lanes: 0,
        lfu_lane_ops: 1e9,
        mem_bytes: 32 << 30,
        bw_bytes: 512e9,
        decode_s: 100e-9,
        dma_latency_s: 200e-9,
    }];
    // Walk the design top-down computing subtree peaks.
    for (i, &fanout) in design.fanouts.iter().enumerate() {
        let subtree_cores: u64 = design.fanouts[i..].iter().map(|&f| f as u64).product();
        let subtree_peak = subtree_cores as f64 * leaf.mac_ops;
        // Feed bandwidth available from above (the card link, shared by
        // the nodes of this level).
        let feeders: u64 = design.fanouts[..i].iter().map(|&f| f as u64).product();
        // Each level's nodes jointly enjoy the aggregate bandwidth of the
        // level above, so the intensity burden divides among feeders.
        let in_bw = 512e9 * feeders as f64;
        let oi_req = subtree_peak * feeders as f64 / in_bw;
        let feeds_leaves = i + 1 == design.fanouts.len();
        // No practical node is built with less than 2 MiB of local store.
        let mut mem = mboi_ref_inverse(oi_req).max(2 << 20);
        if !feeds_leaves && mem > (64 << 20) {
            // Off-die DRAM buffer (like the F100 computing card's 32 GiB).
            mem = 32 << 30;
        }
        // Serve bandwidth: what the children will pull.
        let child_fanout = design.fanouts.get(i + 1).copied();
        let child_demand = match child_fanout {
            Some(f) => {
                let child_cores: u64 = design.fanouts[i + 1..].iter().map(|&x| x as u64).product();
                let child_peak = child_cores as f64 * leaf.mac_ops;
                let child_oi = subtree_oi(design, i + 1, &leaf);
                let _ = f;
                child_peak / child_oi.max(1.0)
            }
            None => core_demand,
        };
        let bw = (fanout as f64 * child_demand).max(512e9);
        let next_fanout = design.fanouts.get(i + 1).copied().unwrap_or(0);
        let _ = next_fanout;
        levels.push(LevelSpec {
            name: format!("D{i}"),
            fanout,
            lfu_lanes: 16.min(fanout),
            lfu_lane_ops: 1e9,
            mem_bytes: mem,
            bw_bytes: bw,
            decode_s: 50e-9,
            dma_latency_s: 50e-9,
        });
    }
    // The design's top level takes over the card's fan-out slot.
    levels[0].fanout = 1;
    MachineConfig { name: design.name.clone(), levels, leaf, opts: Default::default() }
}

fn subtree_oi(design: &Design, level: usize, leaf: &cf_core::LeafSpec) -> f64 {
    if level >= design.fanouts.len() {
        return mboi::theoretical(MboiKernel::MatMul, leaf.mem_bytes);
    }
    let subtree_cores: u64 = design.fanouts[level..].iter().map(|&f| f as u64).product();
    let subtree_peak = subtree_cores as f64 * leaf.mac_ops;
    let feeders: u64 = design.fanouts[..level].iter().map(|&f| f as u64).product();
    let oi_req = subtree_peak / (512e9 / feeders as f64);
    mboi_ref(mboi_ref_inverse(oi_req))
}

/// Evaluation of one design: the Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Node-count name.
    pub name: String,
    /// Silicon power in watts (card DRAM excluded, as in the paper).
    pub power_w: f64,
    /// Attained performance in Tops/s (geometric mean over the programs).
    pub perf_tops: f64,
    /// Efficiency in Tops/J.
    pub efficiency: f64,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Memory size of each inner level (top first), in bytes.
    pub level_mem_bytes: Vec<u64>,
}

/// Silicon area of a design (all levels below the card; large-memory
/// levels that feed only inner nodes would be off-die DRAM and count only
/// their controller, but a level feeding leaf cores is always on die).
pub fn design_area_mm2(design: &Design, cfg: &MachineConfig) -> f64 {
    let mut total = 0.0;
    let mut nodes = 1.0;
    for (i, level) in cfg.levels.iter().enumerate().skip(1) {
        let feeds_leaves = i + 1 == cfg.levels.len();
        let on_die = feeds_leaves || level.mem_bytes < (256 << 20);
        let mem = if on_die { level.mem_bytes } else { 0 };
        total += nodes * area::node_mm2(mem, level.fanout, level.lfu_lanes);
        nodes *= level.fanout as f64;
    }
    let _ = design;
    total + nodes * area::CORE_MM2
}

/// Silicon power of a design in watts (card/off-die DRAM excluded, as in
/// the paper's chip-power accounting). Very large on-die memories pay a
/// DESTINY-style access-energy penalty that grows with array size.
pub fn design_power_w(design: &Design, cfg: &MachineConfig) -> f64 {
    let mut total = 0.0;
    let mut nodes = 1.0;
    let n_levels = cfg.levels.len();
    for (i, level) in cfg.levels.iter().enumerate().skip(1) {
        let feeds_leaves = i + 1 == n_levels;
        let on_die = feeds_leaves || level.mem_bytes < (256 << 20);
        if on_die {
            // DESTINY-style wordline/bitline energy growth: multi-GiB
            // monolithic eDRAM arrays pay dearly per access.
            let size_factor = (level.mem_bytes as f64 / (256u64 << 20) as f64).powf(0.75).max(1.0);
            let base = energy::node_w(level.mem_bytes, level.fanout, level.lfu_lanes, 0.0);
            let bw_w = level.bw_bytes / 1e9 * energy::PER_GBPS_W * size_factor;
            total += nodes * (base + bw_w);
        } else {
            // Off-die buffer: only the node's ports and LFUs are silicon.
            total += nodes
                * (level.fanout as f64 * energy::PER_CHILD_W
                    + level.lfu_lanes as f64 * energy::LFU_LANE_W);
        }
        nodes *= level.fanout as f64;
    }
    let _ = design;
    total + nodes * energy::CORE_W
}

/// Evaluates a design on a set of programs (Table 4 uses VGG-16,
/// ResNet-152 and MATMUL; supplied by the caller so `cf-model` stays
/// independent of the workload crate).
///
/// # Errors
///
/// Propagates simulator planning errors.
pub fn evaluate(design: &Design, programs: &[Program]) -> Result<DesignReport, CoreError> {
    let cfg = build_config(design);
    let mut log_sum = 0.0;
    for program in programs {
        let sim = PerfSim::new(&cfg);
        let out = sim.simulate(program)?;
        let tops = out.stats.total_ops() as f64 / out.makespan / 1e12;
        log_sum += tops.max(1e-6).ln();
    }
    let perf_tops = if programs.is_empty() { 0.0 } else { (log_sum / programs.len() as f64).exp() };
    let power_w = design_power_w(design, &cfg);
    Ok(DesignReport {
        name: design.name.clone(),
        power_w,
        perf_tops,
        efficiency: perf_tops / power_w,
        area_mm2: design_area_mm2(design, &cfg),
        level_mem_bytes: cfg.levels.iter().skip(1).map(|l| l.mem_bytes).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_isa::{Opcode, ProgramBuilder};

    fn matmul_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", vec![n, n]);
        let w = b.alloc("w", vec![n, n]);
        b.apply(Opcode::MatMul, [a, w]).unwrap();
        b.build()
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<String> = table4_designs().into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["1-512", "1-2-16-512", "1-4-16-512", "1-4-16-64-512"]);
        assert!(table4_designs().iter().all(|d| d.cores() == 512));
    }

    #[test]
    fn flat_design_needs_huge_memory() {
        let flat = build_config(&table4_designs()[0]);
        let deep = build_config(&table4_designs()[1]);
        // The flat node's MBOI-sized memory is GiB-class on-die; the deep
        // design's leaf-feeding level stays MiB-class.
        assert!(flat.levels[1].mem_bytes > (4u64 << 30));
        assert!(deep.levels.last().unwrap().mem_bytes <= (64 << 20));
    }

    #[test]
    fn flat_design_has_worst_area_and_efficiency() {
        let designs = table4_designs();
        let programs = vec![matmul_program(2048)];
        let reports: Vec<DesignReport> =
            designs.iter().map(|d| evaluate(d, &programs).unwrap()).collect();
        let flat = &reports[0];
        for deep in &reports[1..] {
            assert!(
                flat.area_mm2 > 5.0 * deep.area_mm2,
                "flat {:.0} mm² vs {} {:.0} mm²",
                flat.area_mm2,
                deep.name,
                deep.area_mm2
            );
            assert!(
                deep.efficiency > 1.3 * flat.efficiency,
                "{} {:.2} Tops/J vs flat {:.2}",
                deep.name,
                deep.efficiency,
                flat.efficiency
            );
        }
    }

    #[test]
    fn a_three_level_design_is_most_efficient() {
        // Table 4's headline: the sweet spot is a shallow *hierarchical*
        // design (the paper's best is 1-2-16-512 at 2.04 Tops/J); the
        // flat and the deepest designs lose.
        let designs = table4_designs();
        let programs = vec![matmul_program(2048)];
        let reports: Vec<DesignReport> =
            designs.iter().map(|d| evaluate(d, &programs).unwrap()).collect();
        let best = reports.iter().max_by(|a, b| a.efficiency.total_cmp(&b.efficiency)).unwrap();
        assert!(
            best.name == "1-2-16-512" || best.name == "1-4-16-512",
            "best design was {} — expected a three-level hierarchy",
            best.name
        );
    }

    #[test]
    fn mboi_ref_fit_points() {
        assert!((mboi_ref(8 << 20) - 29.0).abs() < 0.1);
        let m = mboi_ref_inverse(465.0);
        assert!(m > (4u64 << 30) && m < (16u64 << 30), "flat memory {m}");
    }
}
