//! Historical data series behind Figures 1 and 16.
//!
//! Figure 1 plots the most power-efficient ML accelerator published in
//! each year 2012–2018 (3.2× annual growth, ~1213× total). Figure 16
//! plots NVIDIA GPU core counts versus memory bandwidth since 2009,
//! showing core growth collapsing from 67.6 %/yr (2009-2013) to 8.8 %/yr
//! while bandwidth plods along at ~15 %/yr. Values are reconstructed from
//! the paper's citations and its stated growth rates.

/// One accelerator efficiency point of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelPoint {
    /// Publication year.
    pub year: u32,
    /// Accelerator name.
    pub name: &'static str,
    /// Power efficiency in Tops/W.
    pub tops_per_w: f64,
}

/// The Figure 1 series (best accelerator per year).
pub fn accelerator_efficiency() -> Vec<AccelPoint> {
    vec![
        AccelPoint { year: 2012, name: "NeuFlow", tops_per_w: 0.023 },
        AccelPoint { year: 2013, name: "Quality-Programmable VP", tops_per_w: 0.064 },
        AccelPoint { year: 2014, name: "DianNao", tops_per_w: 0.0932 },
        AccelPoint { year: 2015, name: "ShiDianNao", tops_per_w: 0.606 },
        AccelPoint { year: 2016, name: "Eyeriss", tops_per_w: 1.35 },
        AccelPoint { year: 2017, name: "Envision", tops_per_w: 10.0 },
        AccelPoint { year: 2018, name: "Conv-RAM", tops_per_w: 28.1 },
    ]
}

/// One GPU generation of Figure 16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuGeneration {
    /// Launch year.
    pub year: u32,
    /// Product name.
    pub name: &'static str,
    /// CUDA core count.
    pub cores: u32,
    /// Memory bandwidth in GB/s.
    pub bw_gbps: f64,
}

/// The Figure 16 series (flagship GeForce/Titan per year).
pub fn gpu_generations() -> Vec<GpuGeneration> {
    vec![
        GpuGeneration { year: 2009, name: "GTX 285", cores: 240, bw_gbps: 159.0 },
        GpuGeneration { year: 2010, name: "GTX 480", cores: 480, bw_gbps: 177.4 },
        GpuGeneration { year: 2011, name: "GTX 580", cores: 512, bw_gbps: 192.4 },
        GpuGeneration { year: 2012, name: "GTX 680", cores: 1536, bw_gbps: 192.2 },
        GpuGeneration { year: 2013, name: "GTX 780 Ti", cores: 2880, bw_gbps: 336.0 },
        GpuGeneration { year: 2014, name: "GTX 980", cores: 2048, bw_gbps: 224.0 },
        GpuGeneration { year: 2015, name: "GTX Titan X", cores: 3072, bw_gbps: 336.5 },
        GpuGeneration { year: 2016, name: "GTX 1080", cores: 2560, bw_gbps: 320.0 },
        GpuGeneration { year: 2017, name: "GTX 1080 Ti", cores: 3584, bw_gbps: 484.0 },
        GpuGeneration { year: 2018, name: "RTX 2080 Ti", cores: 4352, bw_gbps: 616.0 },
    ]
}

/// Compound annual growth rate between two points `(year, value)`.
pub fn cagr(from: (u32, f64), to: (u32, f64)) -> f64 {
    let years = (to.0 - from.0) as f64;
    (to.1 / from.1).powf(1.0 / years) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_growth_matches_paper() {
        let pts = accelerator_efficiency();
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        let total = last.tops_per_w / first.tops_per_w;
        // "1213x improvement compared with those in 2012".
        assert!((total - 1213.0).abs() / 1213.0 < 0.05, "total improvement {total:.0}x");
        let rate = cagr((first.year, first.tops_per_w), (last.year, last.tops_per_w));
        // "increasing at a dramatic speed, i.e., 3.2x each year".
        assert!((rate + 1.0 - 3.27).abs() < 0.15, "annual growth {:.2}x", rate + 1.0);
    }

    #[test]
    fn figure1_is_monotone() {
        let pts = accelerator_efficiency();
        assert!(pts.windows(2).all(|w| w[1].tops_per_w > w[0].tops_per_w));
    }

    #[test]
    fn figure16_growth_rates_match_paper() {
        let g = gpu_generations();
        let y = |year: u32| g.iter().find(|p| p.year == year).unwrap();
        // Cores 2009→2013: "67.6% per year" (we land in that regime).
        let early = cagr((2009, y(2009).cores as f64), (2013, y(2013).cores as f64));
        assert!(early > 0.5, "early core growth {early:.2}");
        // Cores 2013→2018: "8.8% per year for last 5 years".
        let late = cagr((2013, y(2013).cores as f64), (2018, y(2018).cores as f64));
        assert!((late - 0.088).abs() < 0.03, "late core growth {late:.3}");
        // Bandwidth over the decade: "about 15% annually".
        let bw = cagr((2009, y(2009).bw_gbps), (2018, y(2018).bw_gbps));
        assert!((bw - 0.15).abs() < 0.03, "bandwidth growth {bw:.3}");
    }
}
