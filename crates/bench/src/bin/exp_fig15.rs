//! Regenerates the paper's fig15 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::fig15::run());
}
