//! Regenerates the paper's fig1 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::fig1::run());
}
