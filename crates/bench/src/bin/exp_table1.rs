//! Regenerates the paper's table1 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table1::run());
}
