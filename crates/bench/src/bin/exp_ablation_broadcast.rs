//! §3.6 data-broadcasting ablation.
fn main() {
    println!("{}", cf_bench::experiments::ablations::run_broadcast());
}
