//! Regenerates the paper's table2 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table2::run());
}
