//! Regenerates the paper's table7 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table7::run());
}
