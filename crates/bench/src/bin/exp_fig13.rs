//! Regenerates the paper's fig13 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::fig13::run());
}
