//! Regenerates the paper's table8 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table8::run());
}
