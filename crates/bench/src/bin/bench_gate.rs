//! `bench_gate` — the CI performance gate over the cf-runtime service
//! layer.
//!
//! Measures four headline numbers, writes them to `BENCH_runtime.json`
//! (the artifact CI uploads) and compares the cache-effectiveness
//! number against a committed baseline:
//!
//! * `cached_speedup` — best-case (per-iteration minimum) uncached
//!   simulate latency over best-case cached simulate latency for the
//!   same `(machine, program)` key. This is
//!   the number the plan cache exists to produce, so it is gated: the
//!   gate **fails when it regresses more than 20%** below the committed
//!   baseline (`current < 0.8 × baseline`).
//! * `uncached_us` — best-case *cold* simulate latency (cache bypassed,
//!   full planner + model run). The cold path carries its own optimisations
//!   (shape memo, plan arena, parallel fan-out), so it is **also
//!   gated**: the gate fails when the measured latency exceeds the
//!   baseline's as-written value (headroom undone) by more than 20%
//!   (`current > 1.2 × baseline / headroom`).
//! * `serve_jobs_per_s` — the 19-job `assets/serve.jobs` manifest
//!   through `serve_manifest`, end to end (informational).
//! * `replay_records_per_s` — `scan_valid_prefix` over a synthetic
//!   5000-record journal image (informational).
//! * `profile_overhead` — `simulate_profiled` wall time over plain
//!   `simulate` for the same program (informational; the *disabled*
//!   profiler costs one branch and is covered by the gated number).
//!
//! ```text
//! bench_gate [--out PATH] [--baseline PATH] [--write-baseline]
//! ```
//!
//! The baseline lives at `crates/bench/baselines/runtime.json` and is
//! deliberately conservative (about half of what a developer laptop
//! measures) so shared CI runners don't flake; `--write-baseline`
//! regenerates it from the current measurement with the same headroom.
//!
//! Exit codes: `0` pass, `1` gate failure or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_core::{Machine, MachineConfig};
use cf_runtime::journal::{encode_record, scan_valid_prefix, JOURNAL_VERSION};
use cf_runtime::serve::serve_manifest;
use cf_runtime::{
    JobEntry, JobOptions, JobOutput, Record, RunHeader, Runtime, RuntimeConfig, ServeOptions,
};
use cf_workloads::nets;
use serde_json::{Map, Serialize, Value};

/// Cached-simulate iterations (cheap: microseconds each).
const CACHED_ITERS: u32 = 200;
/// Uncached-simulate iterations (each runs the full planner + model;
/// enough samples for the minimum to escape scheduler noise).
const UNCACHED_ITERS: u32 = 16;
/// Synthetic journal records for the replay-rate measurement.
const REPLAY_RECORDS: u64 = 5000;
/// Profiled-vs-plain simulate iterations for the overhead measurement.
const PROFILE_ITERS: u32 = 6;
/// Hottest-signature budget passed to `simulate_profiled` (matches the
/// serve default order of magnitude; the top-N heap is O(log N) per
/// memo event either way).
const PROFILE_TOP_SIGNATURES: usize = 16;
/// Gate threshold: fail when cached_speedup < this fraction of baseline.
const GATE_FRACTION: f64 = 0.8;
/// Cold-latency gate: fail when measured uncached latency exceeds the
/// baseline's at-write-time measurement (its committed value with the
/// `BASELINE_HEADROOM` undone) by more than this factor.
const COLD_GATE_FACTOR: f64 = 1.2;
/// Headroom applied by `--write-baseline` (baseline = measured / 2).
const BASELINE_HEADROOM: f64 = 0.5;

fn repo_root() -> PathBuf {
    // crates/bench/ -> crates/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// The `BENCH_runtime.json` artifact (also the baseline-file schema).
struct GateReport {
    cached_speedup: f64,
    cached_us: f64,
    uncached_us: f64,
    serve_jobs_per_s: f64,
    replay_records_per_s: f64,
    profile_overhead: f64,
}

/// Rounds to two decimals so the committed baseline diffs stay readable.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

impl Serialize for GateReport {
    fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("cached_speedup", round2(self.cached_speedup));
        obj.insert("cached_us", round2(self.cached_us));
        obj.insert("uncached_us", round2(self.uncached_us));
        obj.insert("serve_jobs_per_s", round2(self.serve_jobs_per_s));
        obj.insert("replay_records_per_s", self.replay_records_per_s.round());
        obj.insert("profile_overhead", round2(self.profile_overhead));
        Value::Object(obj)
    }
}

/// Extracts a gated number from a baseline file (parsed as real JSON;
/// older baselines without the newer informational fields still work).
fn baseline_field(text: &str, field: &str) -> Option<f64> {
    serde_json::from_str(text).ok()?.get(field)?.as_f64()
}

fn measure_cached_speedup() -> (f64, f64, f64) {
    let program = Arc::new(nets::matmul_program(512));
    let runtime = Runtime::new(RuntimeConfig { workers: 1, ..Default::default() });
    // Warm: the first submit fills the cache.
    runtime
        .submit_simulate(MachineConfig::cambricon_f1(), Arc::clone(&program))
        .join()
        .expect("warmup simulate");

    // Both latencies take the per-iteration *minimum*, not the mean: on
    // a shared CI runner, interference (host contention, timer wakeups,
    // frequency drift) is strictly additive, so the minimum is the
    // stable estimate of what the code actually costs and the gate
    // doesn't flake when a neighbour steals the core mid-run.
    let mut cached = Duration::MAX;
    for _ in 0..CACHED_ITERS {
        let t0 = Instant::now();
        runtime
            .submit_simulate(MachineConfig::cambricon_f1(), Arc::clone(&program))
            .join()
            .expect("cached simulate");
        cached = cached.min(t0.elapsed());
    }

    let opts = JobOptions { bypass_cache: true, ..Default::default() };
    let mut uncached = Duration::MAX;
    for _ in 0..UNCACHED_ITERS {
        let t0 = Instant::now();
        runtime
            .submit_simulate_opts(opts, MachineConfig::cambricon_f1(), Arc::clone(&program))
            .join()
            .expect("uncached simulate");
        uncached = uncached.min(t0.elapsed());
    }
    (uncached.as_secs_f64() / cached.as_secs_f64(), cached.as_secs_f64(), uncached.as_secs_f64())
}

fn measure_serve_throughput() -> Result<f64, String> {
    let root = repo_root();
    let manifest_path = root.join("assets").join("serve.jobs");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    // The manifest references programs relative to the repo root; the
    // gate may run from anywhere, so absolutize them.
    let text = text.replace("program=assets/", &format!("program={}/assets/", root.display()));
    let opts = ServeOptions { workers: 4, ..Default::default() };
    let t0 = Instant::now();
    let report = serve_manifest(&text, &opts).map_err(|e| format!("serve failed: {e}"))?;
    let wall = t0.elapsed();
    if report.failures() > 0 {
        return Err(format!("{} serve job(s) failed", report.failures()));
    }
    Ok(report.records.len() as f64 / wall.as_secs_f64())
}

fn measure_replay_rate() -> f64 {
    let header = RunHeader {
        version: JOURNAL_VERSION,
        manifest: 0x1234_5678_9abc_def0,
        machines: 0x0fed_cba9_8765_4321,
        fault_seed: None,
        fault_spec: 0,
        jobs: REPLAY_RECORDS,
    };
    let mut image = String::new();
    image.push_str(&encode_record(&Record::Header(header)));
    image.push('\n');
    for index in 0..REPLAY_RECORDS {
        let entry = JobEntry {
            index,
            label: format!("job{index}"),
            machine: "f1".to_string(),
            mode: "simulate",
            outcome: Ok(JobOutput::Sim {
                makespan_s: 0.001 + index as f64 * 1e-9,
                steady_s: 0.0009,
                attained_tops: 12.5,
                peak_fraction: 0.85,
                root_intensity: 40.0,
            }),
        };
        image.push_str(&encode_record(&Record::Job(entry)));
        image.push('\n');
    }
    let bytes = image.as_bytes();
    let t0 = Instant::now();
    let (records, valid) = scan_valid_prefix(bytes, REPLAY_RECORDS);
    let wall = t0.elapsed().max(Duration::from_nanos(1));
    assert_eq!(records.len() as u64, REPLAY_RECORDS + 1, "scan lost records");
    assert_eq!(valid, bytes.len() as u64, "scan truncated a clean image");
    records.len() as f64 / wall.as_secs_f64()
}

/// Profiled-vs-plain simulate wall-time ratio on the direct (uncached)
/// path. ~1.0x means the profiler's bookkeeping is in the noise.
fn measure_profile_overhead() -> f64 {
    let program = nets::matmul_program(512);
    let machine = Machine::new(MachineConfig::cambricon_f1());
    machine.simulate(&program).expect("warmup simulate");

    let t0 = Instant::now();
    for _ in 0..PROFILE_ITERS {
        machine.simulate(&program).expect("plain simulate");
    }
    let plain = t0.elapsed().max(Duration::from_nanos(1));

    let t0 = Instant::now();
    for _ in 0..PROFILE_ITERS {
        machine.simulate_profiled(&program, PROFILE_TOP_SIGNATURES).expect("profiled simulate");
    }
    let profiled = t0.elapsed();
    profiled.as_secs_f64() / plain.as_secs_f64()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_runtime.json");
    let mut baseline =
        repo_root().join("crates").join("bench").join("baselines").join("runtime.json");
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("bench_gate: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => {
                    eprintln!("bench_gate: --baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--write-baseline" => write_baseline = true,
            _ => {
                eprintln!("usage: bench_gate [--out PATH] [--baseline PATH] [--write-baseline]");
                return ExitCode::FAILURE;
            }
        }
    }

    let (speedup, cached_s, uncached_s) = measure_cached_speedup();
    eprintln!(
        "bench_gate: cached {:.1}µs, uncached {:.1}µs -> speedup {speedup:.1}x",
        cached_s * 1e6,
        uncached_s * 1e6,
    );
    let serve = match measure_serve_throughput() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("bench_gate: serve throughput {serve:.1} jobs/s");
    let replay = measure_replay_rate();
    eprintln!("bench_gate: journal replay {replay:.0} records/s");
    let profile_overhead = measure_profile_overhead();
    eprintln!("bench_gate: simulate_profiled overhead {profile_overhead:.2}x of plain simulate");

    let report = GateReport {
        cached_speedup: speedup,
        cached_us: cached_s * 1e6,
        uncached_us: uncached_s * 1e6,
        serve_jobs_per_s: serve,
        replay_records_per_s: replay,
        profile_overhead,
    };
    let json = serde_json::to_string(&report) + "\n";
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_gate: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("bench_gate: wrote {}", out.display());

    if write_baseline {
        let conservative = GateReport {
            cached_speedup: speedup * BASELINE_HEADROOM,
            cached_us: cached_s * 1e6 / BASELINE_HEADROOM,
            uncached_us: uncached_s * 1e6 * BASELINE_HEADROOM,
            serve_jobs_per_s: serve * BASELINE_HEADROOM,
            replay_records_per_s: replay * BASELINE_HEADROOM,
            profile_overhead,
        };
        let json = serde_json::to_string(&conservative) + "\n";
        if let Some(dir) = baseline.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("bench_gate: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&baseline, &json) {
            eprintln!("bench_gate: cannot write {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench_gate: baseline rewritten at {}", baseline.display());
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {}: {e}", baseline.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(base_speedup) = baseline_field(&text, "cached_speedup") else {
        eprintln!("bench_gate: baseline {} has no cached_speedup", baseline.display());
        return ExitCode::FAILURE;
    };
    let mut failed = false;
    let floor = base_speedup * GATE_FRACTION;
    if speedup < floor {
        eprintln!(
            "bench_gate: FAIL — cached_speedup {speedup:.1}x is below {floor:.1}x \
             (baseline {base_speedup:.1}x, gate at {:.0}%)",
            GATE_FRACTION * 100.0,
        );
        failed = true;
    } else {
        eprintln!(
            "bench_gate: PASS — cached_speedup {speedup:.1}x >= {floor:.1}x \
             (baseline {base_speedup:.1}x, gate at {:.0}%)",
            GATE_FRACTION * 100.0,
        );
    }
    // Cold-latency gate. Older baselines predate the field; skip then.
    if let Some(base_uncached) = baseline_field(&text, "uncached_us") {
        let uncached_us = uncached_s * 1e6;
        let ceiling = base_uncached / BASELINE_HEADROOM * COLD_GATE_FACTOR;
        if uncached_us > ceiling {
            eprintln!(
                "bench_gate: FAIL — cold simulate {uncached_us:.1}µs is above {ceiling:.1}µs \
                 (baseline {base_uncached:.1}µs, headroom undone, +{:.0}% allowed)",
                (COLD_GATE_FACTOR - 1.0) * 100.0,
            );
            failed = true;
        } else {
            eprintln!(
                "bench_gate: PASS — cold simulate {uncached_us:.1}µs <= {ceiling:.1}µs \
                 (baseline {base_uncached:.1}µs, headroom undone, +{:.0}% allowed)",
                (COLD_GATE_FACTOR - 1.0) * 100.0,
            );
        }
    } else {
        eprintln!("bench_gate: baseline has no uncached_us; cold gate skipped");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
