//! Regenerates the paper's table4 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table4::run());
}
