//! §8 future-work extension: sibling interconnect.
fn main() {
    println!("{}", cf_bench::experiments::sibling::run());
}
