//! Regenerates the paper's table3 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table3::run());
}
