//! Regenerates the paper's fig10 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::fig10::run());
}
