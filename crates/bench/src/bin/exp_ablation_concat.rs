//! §3.6 pipeline-concatenating ablation.
fn main() {
    println!("{}", cf_bench::experiments::ablations::run_concat());
}
