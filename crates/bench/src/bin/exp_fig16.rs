//! Regenerates the paper's fig16 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::fig16::run());
}
