//! Regenerates the paper's table6 experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::table6::run());
}
