//! §3.6 TTT ablation.
fn main() {
    println!("{}", cf_bench::experiments::ablations::run_ttt());
}
