//! Regenerates the paper's traffic experiment (see DESIGN.md §5).
fn main() {
    println!("{}", cf_bench::experiments::traffic::run());
}
