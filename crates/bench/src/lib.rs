//! Experiment harness: regenerates every table and figure of the
//! Cambricon-F paper's evaluation (see DESIGN.md §5 for the index).
//!
//! Each experiment lives in [`experiments`] and returns a plain-text
//! report comparing paper-reported values with values measured on this
//! reproduction. Run them all with `cargo bench` (the `experiments` bench
//! target) or individually via `cargo run -p cf-bench --release --bin
//! exp_<id>`.

pub mod experiments;
pub mod table;

/// One experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// All experiments in DESIGN.md §5 order.
pub fn all_experiments() -> Vec<Experiment> {
    use experiments::*;
    vec![
        ("table1", "Table 1: primitive decomposition of ML techniques", table1::run),
        ("table2", "Table 2: computing-primitives analysis", table2::run),
        ("table3", "Table 3: FISA instruction inventory", table3::run),
        ("table4", "Table 4: power/performance of hierarchy designs", table4::run),
        ("table6", "Table 6: Cambricon-F instance specifications", table6::run),
        ("table7", "Table 7: layout characteristics", table7::run),
        ("table8", "Table 8: hardware-characteristics comparison", table8::run),
        ("fig1", "Figure 1: accelerator power efficiency 2012-2018", fig1::run),
        ("fig10", "Figure 10: memory-bounded operational intensity", fig10::run),
        ("fig13", "Figure 13: k-NN execution timelines", fig13::run),
        ("fig15", "Figure 15: rooflines vs GPUs", fig15::run),
        ("fig16", "Figure 16: GPU cores vs bandwidth growth", fig16::run),
        ("ablation_ttt", "§3.6 ablation: tensor transposition table", ablations::run_ttt),
        ("ablation_concat", "§3.6 ablation: pipeline concatenating", ablations::run_concat),
        ("ablation_broadcast", "§3.6 ablation: data broadcasting", ablations::run_broadcast),
        ("traffic", "§7: DRAM-traffic reduction vs GPU", traffic::run),
        ("sibling", "§8 future work: sibling interconnect extension", sibling::run),
    ]
}
