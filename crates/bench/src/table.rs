//! Minimal aligned-text table rendering for experiment reports.

/// A text table with a title, headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `12.3x`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Formats a fraction as `12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row_str(&["xx", "y"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("xx"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(2.5), "2.50x");
        assert_eq!(ratio(650.0), "650x");
        assert_eq!(pct(0.123), "12.3%");
    }
}
