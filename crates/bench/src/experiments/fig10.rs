//! Figure 10: measured and theoretical MBOI on a Cambricon-F node.

use cf_model::mboi::{measured, theoretical, MboiKernel};

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let mut t = Table::new(
        "Figure 10 — MBOI(M) on one node (ops/byte)",
        &[
            "Memory",
            "MatMul theory",
            "MatMul measured",
            "Conv theory",
            "Conv measured",
            "EltW theory",
            "EltW measured",
        ],
    );
    for shift in [18u32, 20, 22, 24] {
        let m = 1u64 << shift;
        let mm_t = theoretical(MboiKernel::MatMul, m);
        let mm_m = measured(MboiKernel::MatMul, m, 8).unwrap_or(f64::NAN);
        let cv_t = theoretical(MboiKernel::Conv2D, m);
        let cv_m = measured(MboiKernel::Conv2D, m, 8).unwrap_or(f64::NAN);
        let el_t = theoretical(MboiKernel::EltWise, m);
        let el_m = measured(MboiKernel::EltWise, m, 8).unwrap_or(f64::NAN);
        t.row(&[
            format!("{} KiB", m >> 10),
            format!("{mm_t:.1}"),
            format!("{mm_m:.1}"),
            format!("{cv_t:.1}"),
            format!("{cv_m:.1}"),
            format!("{el_t:.3}"),
            format!("{el_m:.3}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nShape check (paper Figure 10): blocked kernels rise monotonically \
         (∝ sqrt(M)); streaming kernels stay flat.\n",
    );
    out
}
