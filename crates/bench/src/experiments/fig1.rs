//! Figure 1: power efficiency of ML accelerators, 2012-2018.

use cf_model::survey::{accelerator_efficiency, cagr};

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let pts = accelerator_efficiency();
    let mut t = Table::new(
        "Figure 1 — accelerator power efficiency by year",
        &["Year", "Accelerator", "Tops/W"],
    );
    for p in &pts {
        t.row(&[p.year.to_string(), p.name.into(), format!("{:.3}", p.tops_per_w)]);
    }
    let first = pts.first().unwrap();
    let last = pts.last().unwrap();
    let growth = cagr((first.year, first.tops_per_w), (last.year, last.tops_per_w)) + 1.0;
    let mut out = t.render();
    out.push_str(&format!(
        "\nAnnual growth {:.2}x (paper: 3.2x); total improvement {:.0}x (paper: 1213x).\n",
        growth,
        last.tops_per_w / first.tops_per_w
    ));
    out
}
