//! Table 6: specifications of the Cambricon-F instances.

use cf_core::MachineConfig;

use crate::table::Table;

fn spec_table(cfg: &MachineConfig) -> String {
    let mut t = Table::new(
        format!("Table 6 — {} specification", cfg.name),
        &["Level", "Name", "FFU/node", "LFU/node", "Mem/node", "Peak Tops"],
    );
    let mut nodes = 1u64;
    for (i, level) in cfg.levels.iter().enumerate() {
        let below: u64 = cfg.levels[i..].iter().map(|l| l.fanout as u64).product();
        t.row(&[
            format!("L{i}"),
            level.name.clone(),
            level.fanout.to_string(),
            level.lfu_lanes.to_string(),
            human_bytes(level.mem_bytes),
            format!("{:.1}", below as f64 * cfg.leaf.mac_ops / 1e12),
        ]);
        nodes *= level.fanout as u64;
    }
    t.row(&[
        format!("L{}", cfg.levels.len()),
        "Core".into(),
        "-".into(),
        "-".into(),
        human_bytes(cfg.leaf.mem_bytes),
        format!("{:.2}", cfg.leaf.mac_ops / 1e12),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "Total: {nodes} cores, {:.0} Tops peak, root bandwidth {:.0} GB/s\n",
        cfg.peak_ops() / 1e12,
        cfg.root_bw_bytes() / 1e9
    ));
    out
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 40 {
        format!("{} TB", b >> 40)
    } else if b >= 1 << 30 {
        format!("{} GB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{} MB", b >> 20)
    } else {
        format!("{} KB", b >> 10)
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = spec_table(&MachineConfig::cambricon_f100());
    out.push('\n');
    out.push_str(&spec_table(&MachineConfig::cambricon_f1()));
    out.push_str(
        "\nPaper: F100 = 4x2x8x32 = 2048 cores, 956 Tops, 128 GB/s root; \
         F1 = 32 cores, 14.9 Tops, 512 GB/s root.\n",
    );
    out
}
