//! §3.6 ablations: TTT, pipeline concatenating, data broadcasting — on
//! RESNET-152 over the five-level 2048-core machine the paper uses for
//! these studies.

use cf_core::{Machine, MachineConfig, OptFlags, PerfReport};
use cf_workloads::nets;

use crate::table::{pct, ratio, Table};

fn resnet() -> cf_isa::Program {
    // A large batch keeps every level's sequential decomposer busy enough
    // that cross-cycle reuse (what the TTT saves) is exercised hard.
    nets::build_program(&nets::resnet152(), 256).expect("resnet")
}

fn run_with(opts: OptFlags) -> PerfReport {
    let cfg = MachineConfig::ablation_2048().with_opts(opts);
    Machine::new(cfg).simulate(&resnet()).expect("simulation")
}

/// TTT ablation (paper: 3% → 62% of peak, a 20x gain, with ~93% root-
/// bandwidth utilisation without it).
pub fn run_ttt() -> String {
    let on = run_with(OptFlags::default());
    let off = run_with(OptFlags { ttt: false, ..Default::default() });
    let root_bw = cf_core::MachineConfig::ablation_2048().root_bw_bytes();
    let mut t = Table::new(
        "TTT ablation — ResNet-152 on the 5-level 2048-core machine",
        &["Config", "Time ms", "Peak fraction", "Root traffic GB", "Root BW used"],
    );
    for (name, r) in [("TTT off", &off), ("TTT on", &on)] {
        t.row(&[
            name.into(),
            format!("{:.2}", r.makespan_seconds * 1e3),
            pct(r.peak_fraction),
            format!("{:.2}", r.stats.root_traffic_bytes() as f64 / 1e9),
            pct(r.stats.root_traffic_bytes() as f64 / r.makespan_seconds / root_bw),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "Speedup {}; traffic reduction {} (paper: ~20x speedup, 3% -> 62% of peak, \
         93.36% root-bandwidth utilisation without TTT).\n\
         Note: this reproduction's no-TTT baseline still coalesces operands \
         within a pipeline step, so it is far less pessimistic than the \
         paper's; the mechanism (the no-TTT run saturates root bandwidth \
         while the TTT run does not) reproduces, the 20x magnitude does not.\n",
        ratio(off.makespan_seconds / on.makespan_seconds),
        ratio(off.stats.root_traffic_bytes() as f64 / on.stats.root_traffic_bytes() as f64),
    ));
    out
}

/// Pipeline-concatenating ablation (paper: 93.11% of instructions
/// pre-assignable, 13.0% overall gain).
pub fn run_concat() -> String {
    let on = run_with(OptFlags::default());
    let off = run_with(OptFlags { concat: false, ..Default::default() });
    let gain = off.makespan_seconds / on.makespan_seconds - 1.0;
    // The paper's 93.11 % pre-assignable metric: the fraction of the
    // machine's *sub-instruction* steps with no RAW dependence on their
    // predecessor (layer-level instructions chain, but their batch/spatial
    // pieces do not).
    let program = resnet();
    let cfg = cf_core::MachineConfig::ablation_2048();
    let frac = cf_core::inspect::decomposition_report(&cfg, &program)
        .map(|r| r.preassignable_fraction())
        .unwrap_or(f64::NAN);
    let graph = cf_isa::deps::DepGraph::build(&program);
    format!(
        "## Pipeline concatenating — ResNet-152\nwith: {:.2} ms, without: {:.2} ms -> {} gain (paper: 13.0%)\n\
         pre-assignable sub-instruction steps: {} (paper: 93.11%); \
         program-level dependence critical path {} of {} instructions\n",
        on.makespan_seconds * 1e3,
        off.makespan_seconds * 1e3,
        pct(gain),
        pct(frac),
        graph.critical_path(),
        program.instructions().len(),
    )
}

/// Data-broadcasting ablation (paper: +19.0% performance, −24.2% local
/// memory traffic).
pub fn run_broadcast() -> String {
    let on = run_with(OptFlags::default());
    let off = run_with(OptFlags { broadcast: false, ..Default::default() });
    let traffic =
        |r: &PerfReport| -> f64 { r.stats.levels.iter().map(|l| l.dma_bytes).sum::<u64>() as f64 };
    let gain = off.makespan_seconds / on.makespan_seconds - 1.0;
    let saved = 1.0 - traffic(&on) / traffic(&off);
    format!(
        "## Data broadcasting — ResNet-152\nwith: {:.2} ms, without: {:.2} ms -> {} gain (paper: 19.0%); \
         local traffic saved {} (paper: 24.2%)\n",
        on.makespan_seconds * 1e3,
        off.makespan_seconds * 1e3,
        pct(gain),
        pct(saved)
    )
}
