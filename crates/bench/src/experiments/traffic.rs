//! §7 scalability: DRAM-traffic reduction of Cambricon-F100 vs the GPU
//! (paper: 73.4% — 98.8% less traffic).

use cf_core::{Machine, MachineConfig};
use cf_model::gpu::GpuSystem;
use cf_ops::cost;

use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run() -> String {
    let machine = Machine::new(MachineConfig::cambricon_f100());
    let dgx = GpuSystem::dgx1();
    let mut t = Table::new(
        "§7 — DRAM traffic: Cambricon-F100 vs GPU model",
        &["Benchmark", "Flops", "CF root GB", "GPU DRAM GB", "Reduction"],
    );
    let mut out_lines = Vec::new();
    for (name, program) in crate::experiments::fig15::benchmark_programs(true) {
        let r = machine.simulate(&program).expect("simulation");
        let flops: u64 = program.instructions().iter().map(cost::flops).sum();
        let cf_gb = r.stats.root_traffic_bytes() as f64 / 1e9;
        // GPU DRAM traffic = flops / measured GPU operational intensity.
        let gpu_oi = dgx.workload_point(name).unwrap().oi;
        let gpu_gb = flops as f64 / gpu_oi / 1e9;
        let reduction = 1.0 - cf_gb / gpu_gb;
        out_lines.push(reduction);
        t.row(&[
            name.into(),
            format!("{:.2e}", flops as f64),
            format!("{cf_gb:.2}"),
            format!("{gpu_gb:.2}"),
            pct(reduction),
        ]);
    }
    let mut out = t.render();
    let lo = out_lines.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = out_lines.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.push_str(&format!(
        "Reduction range {} .. {} (paper: 73.4% .. 98.8%).\n\
         The dense workloads (VGG-16, MATMUL) reproduce the paper's large \
         reductions; on the iterative ML tasks Cambricon-F *loses* traffic \
         to the GPU, exactly as the paper's §6 concedes (\"DGX-1 achieves \
         up to 85x higher operation intensity\" there, because Cambricon-F \
         writes intermediate results back to the root when TTT forwarding \
         fails across control flow).\n",
        pct(lo),
        pct(hi)
    ));
    out
}
