//! Table 7: layout characteristics (area/power of core and chips) —
//! model-vs-paper.

use cf_core::MachineConfig;
use cf_model::{area, energy};

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let f1 = MachineConfig::cambricon_f1();
    let f100 = MachineConfig::cambricon_f100();
    let mut t = Table::new(
        "Table 7 — layout characteristics (45 nm)",
        &["Component", "Paper area mm2", "Model area mm2", "Paper power W", "Model power W"],
    );
    t.row(&[
        "Core".into(),
        "0.426".into(),
        format!("{:.3}", area::CORE_MM2),
        "0.0752".into(),
        format!("{:.4}", energy::CORE_W),
    ]);
    t.row(&[
        "Cambricon-F1 chip".into(),
        "29.21".into(),
        format!("{:.2}", area::subtree_mm2(&f1, 1)),
        "4.935".into(),
        format!("{:.3}", energy::subtree_w(&f1, 1)),
    ]);
    t.row(&[
        "Cambricon-F100 chip".into(),
        "415.11".into(),
        format!("{:.2}", area::subtree_mm2(&f100, 2)),
        "42.873".into(),
        format!("{:.3}", energy::subtree_w(&f100, 2)),
    ]);
    let mut out = t.render();
    out.push_str(
        "\nCore breakdown (paper): memory 47.3% / combinational 41.3% / registers 9.9% / other 1.5% of area.\n",
    );
    out
}
