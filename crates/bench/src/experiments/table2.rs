//! Table 2: computing-primitives analysis (dependency classes, retrieving
//! operators, data redundancy) — cross-checked against the live axis
//! metadata of `cf-ops`.

use cf_isa::{ConvParams, Instruction, OpParams, Opcode};
use cf_ops::fractal::{split_axes, table2, Dependency};
use cf_tensor::{Region, Shape};

use crate::table::Table;

fn reg(offset: u64, dims: &[usize]) -> Region {
    Region::contiguous(offset, Shape::new(dims.to_vec()))
}

/// Runs the experiment.
pub fn run() -> String {
    let mut t = Table::new(
        "Table 2 — computing primitives analysis",
        &["Primitive", "Decomposition", "Dependency", "g(.)", "Data Redundancy"],
    );
    for row in table2() {
        t.row(&[
            row.primitive.into(),
            row.decomposition.into(),
            row.dependency.to_string(),
            row.reduce.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            row.redundancy.into(),
        ]);
    }
    let mut out = t.render();

    // Cross-check: the static table agrees with the live decomposers.
    let conv = Instruction::new(
        Opcode::Cv2D,
        OpParams::Conv(ConvParams::same(1, 1)),
        vec![reg(0, &[4, 8, 8, 16]), reg(4096, &[3, 3, 16, 8])],
        vec![reg(5248, &[4, 8, 8, 8])],
    )
    .unwrap();
    let axes = split_axes(&conv);
    let feature = axes.iter().find(|a| a.label == "in-feature").unwrap();
    let batch = axes.iter().find(|a| a.label == "batch").unwrap();
    let spatial = axes.iter().find(|a| a.label == "spatial-h").unwrap();
    out.push_str(&format!(
        "\nLive cross-check (CONV axes): feature-wise = {} (g = {:?}), batch-wise = {} \
         (redundancy `{}`), spatial = {} (redundancy `{}`)\n",
        feature.dependency,
        feature.reduce.map(|r| r.to_string()),
        batch.dependency,
        batch.redundancy,
        spatial.dependency,
        spatial.redundancy,
    ));
    assert_eq!(feature.dependency, Dependency::OutputDependent);
    assert_eq!(batch.dependency, Dependency::InputDependent);
    out
}
