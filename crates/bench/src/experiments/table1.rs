//! Table 1: decomposition of ML techniques into computing primitives.

use cf_workloads::ml::MlSize;
use cf_workloads::profile::{self, Primitive};

use crate::table::{pct, Table};

/// Paper-reported dominant shares for sanity rows.
const PAPER: [(&str, &str, f64); 6] = [
    ("CNN", "CONV", 0.947),
    ("DNN", "MMM", 0.999),
    ("k-Means", "IP", 0.908),
    ("k-NN", "IP", 0.996),
    ("SVM", "IP", 0.993),
    ("LVQ", "ELTW", 0.598),
];

/// Runs the experiment.
pub fn run() -> String {
    let rows = profile::table1(&MlSize::paper()).expect("profiling cannot fail");
    let mut t = Table::new(
        "Table 1 — primitive shares of each technique (measured on this implementation)",
        &["Technique", "IP", "CONV", "POOL", "MMM", "ELTW", "SORT", "COUNT"],
    );
    for row in &rows {
        let mut cells = vec![row.technique.clone()];
        for p in Primitive::ALL {
            let s = row.share(p);
            cells.push(if s < 0.0005 { "-".into() } else { pct(s) });
        }
        t.row(&cells);
    }
    let mut out = t.render();
    out.push('\n');
    let mut cmp =
        Table::new("Dominant primitive vs paper", &["Technique", "Primitive", "Paper", "Measured"]);
    for (tech, prim, paper) in PAPER {
        let row = rows.iter().find(|r| r.technique == tech).unwrap();
        let p = Primitive::ALL.iter().copied().find(|p| p.label() == prim).unwrap();
        cmp.row(&[tech.into(), prim.into(), pct(paper), pct(row.share(p))]);
    }
    out.push_str(&cmp.render());
    out
}
