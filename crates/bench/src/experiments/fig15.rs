//! Figure 15: roofline comparison — Cambricon-F1 vs GTX-1080Ti and
//! Cambricon-F100 vs DGX-1 on the seven Table 5 benchmarks.

use cf_core::{Machine, MachineConfig, PerfReport};
use cf_isa::Program;
use cf_model::gpu::GpuSystem;
use cf_workloads::{ml, nets};

use crate::table::{pct, ratio, Table};

/// One Cambricon-F side of the comparison.
pub struct CfPoint {
    /// Benchmark name.
    pub name: &'static str,
    /// Simulation report.
    pub report: PerfReport,
}

/// Builds the seven Table 5 benchmark programs for a machine (batch sizes
/// scale with machine size, as the paper's "variable batch").
pub fn benchmark_programs(big_machine: bool) -> Vec<(&'static str, Program)> {
    let batch = if big_machine { 64 } else { 16 };
    let size = ml::MlSize::paper();
    // Blocked-matmul operational intensity is set by node memory, not
    // problem size (it plateaus beyond ~4096), so the 32768-order paper
    // benchmark is run at 8192 to keep simulation time reasonable.
    let mm_order = 8192;
    vec![
        ("VGG-16", nets::build_program(&nets::vgg16(), batch).expect("vgg")),
        ("ResNet-152", nets::build_program(&nets::resnet152(), batch).expect("resnet")),
        ("K-NN", ml::knn_benchmark_program(&size, 16).expect("knn")),
        ("K-Means", ml::kmeans_benchmark_program(&size).expect("kmeans")),
        ("LVQ", ml::lvq_benchmark_program(&size).expect("lvq")),
        ("SVM", ml::svm_program(&size).expect("svm")),
        ("MATMUL", nets::matmul_program(mm_order)),
    ]
}

/// Simulates the benchmark suite on one machine.
pub fn simulate_suite(cfg: &MachineConfig, big: bool) -> Vec<CfPoint> {
    let machine = Machine::new(cfg.clone());
    benchmark_programs(big)
        .into_iter()
        .map(|(name, program)| CfPoint {
            name,
            report: machine.simulate(&program).expect("simulation"),
        })
        .collect()
}

fn compare(cfg: &MachineConfig, gpu: &GpuSystem, big: bool, paper_mean: f64) -> String {
    let points = simulate_suite(cfg, big);
    let mut t = Table::new(
        format!("Figure 15 — {} vs {}", cfg.name, gpu.name),
        &["Benchmark", "CF OI op/B", "CF Tops", "CF %peak", "GPU OI", "GPU Tops", "Speedup"],
    );
    let mut log_sum = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    let mut peak_sum = 0.0;
    for p in &points {
        let gpu_tops = gpu.attained_ops(p.name).unwrap() / 1e12;
        let cf_tops = p.report.attained_ops / 1e12;
        let speedup = cf_tops / gpu_tops;
        log_sum += speedup.ln();
        lo = lo.min(speedup);
        hi = hi.max(speedup);
        peak_sum += p.report.peak_fraction;
        let gpu_oi = gpu.workload_point(p.name).unwrap().oi;
        t.row(&[
            p.name.into(),
            format!("{:.1}", p.report.root_intensity),
            format!("{cf_tops:.2}"),
            pct(p.report.peak_fraction),
            format!("{gpu_oi:.0}"),
            format!("{gpu_tops:.2}"),
            ratio(speedup),
        ]);
    }
    let mean = (log_sum / points.len() as f64).exp();
    let mut out = t.render();
    out.push_str(&format!(
        "Geomean speedup {} (paper: {paper_mean:.2}x); range {}..{}; \
         mean peak fraction {} (paper F1: 88.9%).\n",
        ratio(mean),
        ratio(lo),
        ratio(hi),
        pct(peak_sum / points.len() as f64)
    ));
    out
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = compare(&MachineConfig::cambricon_f1(), &GpuSystem::gtx_1080ti(), false, 5.14);
    out.push('\n');
    out.push_str(&compare(&MachineConfig::cambricon_f100(), &GpuSystem::dgx1(), true, 2.82));
    out
}
