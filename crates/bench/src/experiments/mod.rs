//! One module per reproduced table/figure. Every `run()` returns a
//! plain-text report with paper-reported values alongside measured ones.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod sibling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod traffic;
