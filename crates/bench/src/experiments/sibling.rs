//! §8 future work, implemented: sibling-node interconnect. The paper
//! limits wiring to parent-child paths ("Building interconnection among
//! sibling nodes for Cambricon-F may further improve performance, we left
//! this exploration for future works") — this experiment explores it.
//!
//! The benefit concentrates on output-dependent workloads whose
//! reductions are commissioned to FFUs: with sibling links the partials
//! combine in a log-depth tree across siblings instead of streaming
//! through the parent's memory.

use cf_core::{Machine, MachineConfig, OptFlags};
use cf_isa::{Opcode, Program, ProgramBuilder};

use crate::table::{pct, ratio, Table};

fn big_sorts(count: usize, n: usize) -> Program {
    // Standalone merge sorts: parallel decomposition of a sort is purely
    // output-dependent, so every level must run a Merge reduction —
    // commissioned through parent memory on the H-tree, combined across
    // FFUs with sibling links.
    let mut b = ProgramBuilder::new();
    for i in 0..count {
        let x = b.alloc(format!("x{i}"), vec![n]);
        let y = b.alloc(format!("y{i}"), vec![n]);
        b.emit(Opcode::Sort1D, [x], [y]).unwrap();
    }
    b.build()
}

fn inner_heavy_matmul() -> Program {
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![64, 1 << 20]);
    let w = b.alloc("w", vec![1 << 20, 64]);
    b.apply(Opcode::MatMul, [a, w]).unwrap();
    b.build()
}

/// Runs the experiment.
pub fn run() -> String {
    let cases: Vec<(&str, Program)> = vec![
        ("64 x Sort1D(1M) on F100", big_sorts(64, 1 << 20)),
        ("inner-product MatMul 64x1M x 1Mx64", inner_heavy_matmul()),
    ];
    let mut t = Table::new(
        "§8 extension — sibling interconnect (H-tree baseline vs sibling links, Cambricon-F100)",
        &["Workload", "H-tree ms", "Siblings ms", "Speedup", "Sibling traffic GB"],
    );
    let mut out_note = String::new();
    for (name, program) in &cases {
        let base = Machine::new(MachineConfig::cambricon_f100())
            .simulate(program)
            .expect("baseline simulation");
        let ext =
            Machine::new(MachineConfig::cambricon_f100().with_opts(OptFlags::with_sibling_links()))
                .simulate(program)
                .expect("extension simulation");
        let sib: u64 = ext.stats.levels.iter().map(|l| l.sibling_bytes).sum();
        t.row(&[
            (*name).into(),
            format!("{:.3}", base.makespan_seconds * 1e3),
            format!("{:.3}", ext.makespan_seconds * 1e3),
            ratio(base.makespan_seconds / ext.makespan_seconds),
            format!("{:.3}", sib as f64 / 1e9),
        ]);
        out_note.push_str(&format!(
            "{name}: peak fraction {} -> {}\n",
            pct(base.peak_fraction),
            pct(ext.peak_fraction)
        ));
    }
    let mut out = t.render();
    out.push_str(&out_note);
    out.push_str(
        "The paper left sibling links as future work; this reproduction \
         implements them as an optional machine feature (off by default, \
         matching the published H-tree).\n",
    );
    out
}
