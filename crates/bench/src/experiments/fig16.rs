//! Figure 16: growth in NVIDIA GPU cores and memory bandwidth since 2009.

use cf_model::survey::{cagr, gpu_generations};

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let gens = gpu_generations();
    let mut t = Table::new(
        "Figure 16 — NVIDIA GPU generations",
        &["Year", "GPU", "CUDA cores", "Bandwidth GB/s"],
    );
    for g in &gens {
        t.row(&[
            g.year.to_string(),
            g.name.into(),
            g.cores.to_string(),
            format!("{:.0}", g.bw_gbps),
        ]);
    }
    let y = |year: u32| gens.iter().find(|p| p.year == year).unwrap();
    let early = cagr((2009, y(2009).cores as f64), (2013, y(2013).cores as f64));
    let late = cagr((2013, y(2013).cores as f64), (2018, y(2018).cores as f64));
    let bw = cagr((2009, y(2009).bw_gbps), (2018, y(2018).bw_gbps));
    let mut out = t.render();
    out.push_str(&format!(
        "\nCore growth {:.1}%/yr (2009-13, paper 67.6%), {:.1}%/yr (2013-18, paper 8.8%); \
         bandwidth {:.1}%/yr (paper ~15%).\n",
        100.0 * early,
        100.0 * late,
        100.0 * bw
    ));
    out
}
