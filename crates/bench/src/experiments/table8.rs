//! Table 8: hardware-characteristics comparison across chips and cards.

use cf_core::MachineConfig;
use cf_model::{area, energy, gpu};

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let f1 = MachineConfig::cambricon_f1();
    let f100 = MachineConfig::cambricon_f100();
    let f1_area = area::subtree_mm2(&f1, 1);
    let f1_w = energy::subtree_w(&f1, 1);
    let f100_area = area::subtree_mm2(&f100, 2);
    let f100_w = energy::subtree_w(&f100, 2);
    let f1_peak = f1.peak_ops() / 1e12;
    let f100_chip_peak = f100.peak_ops() / 1e12 / 8.0; // per chip (8 chips)

    let mut t = Table::new(
        "Table 8 — chip comparison",
        &["Chip", "ISA", "Tech", "Mem", "Peak Tops", "Area mm2", "Power W", "Tops/W", "Tops/mm2"],
    );
    let mut push_chip = |name: &str,
                         isa: &str,
                         tech: &str,
                         mem: &str,
                         peak: f64,
                         area_v: Option<f64>,
                         power: Option<f64>| {
        t.row(&[
            name.into(),
            isa.into(),
            tech.into(),
            mem.into(),
            format!("{peak:.1}"),
            area_v.map(|a| format!("{a:.0}")).unwrap_or_else(|| "-".into()),
            power.map(|p| format!("{p:.2}")).unwrap_or_else(|| "-".into()),
            power.map(|p| format!("{:.2}", peak / p)).unwrap_or_else(|| "-".into()),
            area_v.map(|a| format!("{:.2}", peak / a)).unwrap_or_else(|| "-".into()),
        ]);
    };
    push_chip("Cam-F1", "FISA", "45nm", "16 MB eDRAM", f1_peak, Some(f1_area), Some(f1_w));
    push_chip(
        "Cam-F100",
        "FISA",
        "45nm",
        "448 MB eDRAM",
        f100_chip_peak,
        Some(f100_area),
        Some(f100_w),
    );
    for chip in [gpu::gtx_1080ti(), gpu::v100(), gpu::dadiannao(), gpu::tpu()] {
        push_chip(
            chip.name,
            chip.isa,
            &format!("{}nm", chip.tech_nm),
            &format!("{:.1} MB {}", chip.mem_mib, chip.mem_type),
            chip.peak_tops,
            chip.area_mm2,
            chip.power_w,
        );
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nPaper headline: Cam-F1 chip leads at 3.02 Tops/W and 0.51 Tops/mm2 \
         (model: {:.2} Tops/W, {:.2} Tops/mm2).\n",
        f1_peak / f1_w,
        f1_peak / f1_area
    ));
    out.push_str(&format!(
        "Cards: Cam-F1 {:.1} W vs 1080Ti 199.9 W (45.1% per paper); \
         Cam-F100 card {:.1} W vs V100 248.3 W (67.3% per paper).\n",
        energy::machine_peak_w(&f1),
        2.0 * f100_w + 512.0 * energy::DRAM_W_PER_GBPS
    ));
    out
}
