//! Figure 13: execution timeline of the k-NN sample program on
//! Cambricon-F1 and Cambricon-F100.

use cf_core::timeline::EventKind;
use cf_core::{Machine, MachineConfig};
use cf_workloads::ml::{knn_program, MlSize};

use crate::table::pct;

/// Runs the experiment.
pub fn run() -> String {
    // A trimmed k-NN instance keeps the (non-memoized) timeline walk fast
    // while preserving the program structure of Figure 11.
    let size = MlSize { samples: 65_536, dims: 512, classes: 32, queries: 16, iters: 1 };
    let program = knn_program(&size, 16).expect("knn");
    let mut out = String::new();
    for (cfg, depth) in
        [(MachineConfig::cambricon_f1(), 2usize), (MachineConfig::cambricon_f100(), 3usize)]
    {
        let machine = Machine::new(cfg.clone());
        let tl = machine.timeline(&program, depth).expect("timeline");
        out.push_str(&format!(
            "## Figure 13 — k-NN on {} (makespan {:.3} ms; '#' DMA, '=' compute)\n",
            cfg.name,
            tl.makespan * 1e3
        ));
        out.push_str(&tl.render_ascii(depth + 1, 100));
        for level in 0..=depth {
            out.push_str(&format!(
                "L{level}: DMA busy {}, compute busy {}\n",
                pct(tl.busy_fraction(level, EventKind::Dma)),
                pct(tl.busy_fraction(level, EventKind::Compute)),
            ));
        }
        out.push('\n');
    }
    // Figure 12 companion: the same task at different granularities.
    let cfg = MachineConfig::cambricon_f1();
    if let Ok(report) = cf_core::inspect::decomposition_report(&cfg, &program) {
        out.push('\n');
        out.push_str(&report.render(&cfg));
    }
    out.push_str(
        "\nShape check (paper Fig 13): F1's execution is deeply decomposed and \
         compute-dense with a communication-dominated sort/count tail; \
         F100's is dominated by top-level DMA.\n",
    );
    out
}
