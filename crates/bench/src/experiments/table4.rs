//! Table 4: estimated power and performance of different hierarchy
//! designs at equal capability (512 cores ≈ 238 Tops).

use cf_model::designspace::{evaluate, table4_designs};
use cf_workloads::nets;

use crate::table::Table;

/// Paper-reported rows: (name, power W, perf Tops, efficiency Tops/J, area mm²).
const PAPER: [(&str, f64, f64, f64, f64); 4] = [
    ("1-512", 1035.02, 140.92, 0.14, 5662.72),
    ("1-2-16-512", 55.66, 113.34, 2.04, 184.91),
    ("1-4-16-512", 57.52, 107.12, 1.86, 263.64),
    ("1-4-16-64-512", 68.83, 104.94, 1.52, 208.72),
];

/// Runs the experiment.
pub fn run() -> String {
    // Table 4 evaluates VGG-16, ResNet-152 and MATMUL (geometric mean).
    let programs = vec![
        nets::build_program(&nets::vgg16(), 4).expect("vgg"),
        nets::build_program(&nets::resnet152(), 4).expect("resnet"),
        nets::matmul_program(4096),
    ];
    let mut t = Table::new(
        "Table 4 — hierarchy designs (paper | measured)",
        &[
            "Hierarchy",
            "Power W (paper|model)",
            "Perf Tops (paper|sim)",
            "Tops/J (paper|model)",
            "Area mm2 (paper|model)",
        ],
    );
    for (design, paper) in table4_designs().iter().zip(PAPER) {
        let r = evaluate(design, &programs).expect("design evaluation");
        t.row(&[
            r.name.clone(),
            format!("{:.0} | {:.0}", paper.1, r.power_w),
            format!("{:.0} | {:.0}", paper.2, r.perf_tops),
            format!("{:.2} | {:.2}", paper.3, r.efficiency),
            format!("{:.0} | {:.0}", paper.4, r.area_mm2),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nShape check: the flat design needs a multi-GiB on-die memory \
         (impractical area, worst efficiency); shallow hierarchical designs \
         are the sweet spot, as in the paper.\n",
    );
    out
}
