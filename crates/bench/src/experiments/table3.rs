//! Table 3: the FISA instruction inventory.

use cf_isa::Opcode;

use crate::table::Table;

/// Runs the experiment.
pub fn run() -> String {
    let mut t = Table::new("Table 3 — FISA instructions", &["Type", "Name", "Prefers LFU"]);
    for op in Opcode::ALL {
        t.row(&[
            op.category().to_string(),
            op.mnemonic().into(),
            if op.prefers_lfu() { "yes".into() } else { "-".into() },
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\n{} instructions across 5 categories (paper Table 3 lists the same inventory).\n",
        Opcode::ALL.len()
    ));
    out
}
