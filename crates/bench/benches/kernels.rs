//! Criterion micro-benchmarks of the reference kernels (the leaf
//! accelerator's functional model).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cf_isa::ConvParams;
use cf_ops::kernels;
use cf_tensor::{gen::DataGen, Shape};

fn bench_kernels(c: &mut Criterion) {
    let mut g = DataGen::new(1);
    let a = g.uniform(Shape::new(vec![128, 128]), -1.0, 1.0);
    let b = g.uniform(Shape::new(vec![128, 128]), -1.0, 1.0);
    c.bench_function("matmul_128", |bench| {
        bench.iter(|| kernels::matmul(black_box(&a), black_box(&b)).unwrap())
    });

    let x = g.uniform(Shape::new(vec![1, 32, 32, 16]), -1.0, 1.0);
    let w = g.uniform(Shape::new(vec![3, 3, 16, 16]), -1.0, 1.0);
    let p = ConvParams::same(1, 1);
    c.bench_function("conv2d_32x32x16", |bench| {
        bench.iter(|| kernels::conv2d(black_box(&x), black_box(&w), &p).unwrap())
    });

    let keys = g.uniform(Shape::new(vec![4096]), -10.0, 10.0);
    c.bench_function("sort_4096", |bench| {
        bench.iter(|| kernels::sort(black_box(&keys), None).unwrap())
    });

    let v1 = g.uniform(Shape::new(vec![65536]), -1.0, 1.0);
    let v2 = g.uniform(Shape::new(vec![65536]), -1.0, 1.0);
    c.bench_function("eltwise_add_64k", |bench| {
        bench.iter(|| kernels::eltwise_add(black_box(&v1), black_box(&v2)).unwrap())
    });

    let xq = g.uniform(Shape::new(vec![64, 64]), -1.0, 1.0);
    let yq = g.uniform(Shape::new(vec![256, 64]), -1.0, 1.0);
    c.bench_function("euclidean_64x256x64", |bench| {
        bench.iter(|| kernels::euclidean_sq(black_box(&xq), black_box(&yq)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
