//! Criterion micro-benchmarks of the fractal machine itself: planning,
//! performance simulation and functional execution throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cf_core::{Machine, MachineConfig};
use cf_isa::{Opcode, ProgramBuilder};
use cf_tensor::Memory;

fn matmul_program(n: usize) -> cf_isa::Program {
    let mut b = ProgramBuilder::new();
    let a = b.alloc("a", vec![n, n]);
    let w = b.alloc("w", vec![n, n]);
    b.apply(Opcode::MatMul, [a, w]).unwrap();
    b.build()
}

fn bench_simulator(c: &mut Criterion) {
    let f1 = Machine::new(MachineConfig::cambricon_f1());
    let p1k = matmul_program(1024);
    c.bench_function("perf_sim_matmul_1024_f1", |bench| {
        bench.iter(|| f1.simulate(black_box(&p1k)).unwrap())
    });

    let f100 = Machine::new(MachineConfig::cambricon_f100());
    c.bench_function("perf_sim_matmul_1024_f100", |bench| {
        bench.iter(|| f100.simulate(black_box(&p1k)).unwrap())
    });

    let vgg = cf_workloads::nets::build_program(&cf_workloads::nets::vgg16(), 4).unwrap();
    c.bench_function("perf_sim_vgg16_b4_f1", |bench| {
        bench.iter(|| f1.simulate(black_box(&vgg)).unwrap())
    });

    let tiny = Machine::new(MachineConfig::tiny(2, 2, 16 << 10));
    let small = matmul_program(48);
    c.bench_function("functional_exec_matmul_48_tiny", |bench| {
        bench.iter(|| {
            let mut mem = Memory::new(small.extern_elems() as usize);
            tiny.run(black_box(&small), &mut mem).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
