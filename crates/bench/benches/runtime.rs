//! Criterion benchmarks of the cf-runtime service layer: cached vs
//! uncached simulation, and batch throughput as the worker count grows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cf_core::{Machine, MachineConfig};
use cf_runtime::{JobOptions, Runtime, RuntimeConfig};
use cf_workloads::nets;

/// The repeated-workload job mix (8 jobs, 2 distinct keys): the shape the
/// plan cache is built for.
fn mix(programs: &[Arc<cf_isa::Program>]) -> Vec<(MachineConfig, Arc<cf_isa::Program>)> {
    (0..8).map(|i| (MachineConfig::cambricon_f1(), Arc::clone(&programs[i % 2]))).collect()
}

fn bench_runtime(c: &mut Criterion) {
    let programs = [Arc::new(nets::matmul_program(512)), Arc::new(nets::matmul_program(768))];

    // One warm runtime reused across iterations: after the first fill,
    // every simulate is answered from the cache.
    let warm = Runtime::new(RuntimeConfig { workers: 1, ..Default::default() });
    warm.submit_simulate(MachineConfig::cambricon_f1(), Arc::clone(&programs[0])).join().unwrap();
    c.bench_function("simulate_cached", |bench| {
        bench.iter(|| {
            warm.submit_simulate(MachineConfig::cambricon_f1(), black_box(Arc::clone(&programs[0])))
                .join()
                .unwrap()
        })
    });

    c.bench_function("simulate_uncached", |bench| {
        let opts = JobOptions { bypass_cache: true, ..Default::default() };
        bench.iter(|| {
            warm.submit_simulate_opts(
                opts,
                MachineConfig::cambricon_f1(),
                black_box(Arc::clone(&programs[0])),
            )
            .join()
            .unwrap()
        })
    });

    // The cold simulator alone — no pool, no queue, no cache — so the
    // planner-side optimisations (shape memo, arena, inline shapes) are
    // measured without the service round-trip.
    c.bench_function("simulate_cold_direct", |bench| {
        let machine = Machine::new(MachineConfig::cambricon_f1());
        bench.iter(|| machine.simulate(black_box(&programs[0])).unwrap())
    });

    // Same, through the parallel cold path with a 4-thread budget (the
    // report is byte-identical; the fan-out only pays off on multi-op
    // programs, so this also tracks its overhead on a single-op one).
    c.bench_function("simulate_cold_parallel4", |bench| {
        let machine = Machine::new(MachineConfig::cambricon_f1());
        bench.iter(|| machine.simulate_parallel(black_box(&programs[0]), 4).unwrap())
    });

    // Batch throughput: the same 8-job repeated mix on a cold 1-worker
    // pool vs a 4-worker pool with a shared cache. Pool construction is
    // inside the measurement on purpose: this is the serve-a-manifest
    // round-trip.
    c.bench_function("batch_8jobs_1worker_cold", |bench| {
        bench.iter(|| {
            let rt =
                Runtime::new(RuntimeConfig { workers: 1, cache_capacity: 0, ..Default::default() });
            for h in rt.simulate_batch(black_box(mix(&programs))) {
                h.join().unwrap();
            }
        })
    });

    c.bench_function("batch_8jobs_4workers_cached", |bench| {
        bench.iter(|| {
            let rt = Runtime::new(RuntimeConfig { workers: 4, ..Default::default() });
            for h in rt.simulate_batch(black_box(mix(&programs))) {
                h.join().unwrap();
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
