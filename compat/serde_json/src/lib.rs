//! Offline stand-in for the slice of `serde_json 1` this workspace uses.
//!
//! Provides a JSON [`Value`] tree with an **insertion-ordered** object
//! map (mirroring serde_json's `preserve_order` feature — the runtime's
//! `/stats` payload and `BENCH_runtime.json` keep their field order
//! stable), a strict recursive-descent [`from_str`] parser, a writer
//! whose float formatting (`{:?}`) round-trips exactly, and a minimal
//! [`Serialize`] trait so one struct can define the single canonical
//! JSON shape shared by every exporter.
//!
//! ```
//! use serde_json::{from_str, Map, Value};
//!
//! let mut obj = Map::new();
//! obj.insert("name", "cf");
//! obj.insert("speedup", 25.55);
//! let v = Value::Object(obj);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"cf","speedup":25.55}"#);
//! assert_eq!(from_str(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON number: unsigned, signed or floating, kept distinct so `u64`
/// counters never lose precision through an `f64` detour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (formatted with `{:?}`, which round-trips exactly).
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            // `{:?}` prints the shortest representation that parses back
            // to the same bits (and always marks integral floats `1.0`).
            Number::F64(n) if n.is_finite() => write!(f, "{n:?}"),
            // JSON has no Infinity/NaN; mirror serde_json by emitting
            // null for non-finite floats.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// An insertion-ordered JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Appends (or replaces) `key`, preserving first-insertion order.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed or constructed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Object field access (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{}", escape(s)),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::U64(n))
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(Number::U64(u64::from(n)))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(Number::U64(n as u64))
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::Number(Number::U64(n as u64))
        } else {
            Value::Number(Number::I64(n))
        }
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::from(i64::from(n))
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(Number::F64(n))
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

/// Types with one canonical JSON representation.
///
/// The real serde splits this across `Serialize`/`Serializer`; the
/// offline subset collapses it to "produce a [`Value`]", which is all
/// the workspace needs to share one schema between exporters.
pub trait Serialize {
    /// The value's canonical JSON tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

/// Serializes `value` to its compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> String {
    value.to_value().to_string()
}

/// JSON-escapes `s` into a quoted string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (strict, like serde_json's `from_str`).
///
/// # Errors
///
/// Any grammar violation, with the byte offset where parsing stopped.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap: malformed deeply-nested input must not blow the
/// stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must
                                // follow as another \uXXXX escape.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input was &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The slice is ASCII digits/signs by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trips_with_insertion_order() {
        let mut m = Map::new();
        m.insert("z", 1u64);
        m.insert("a", 2u64);
        m.insert("list", Value::Array(vec![Value::from(true), Value::Null]));
        let v = Value::Object(m);
        let text = v.to_string();
        assert_eq!(text, r#"{"z":1,"a":2,"list":[true,null]}"#);
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_via_debug_formatting() {
        for x in [0.0, 1.0, 25.55, 1e-9, 1234.5678901234, f64::MIN_POSITIVE, std::f64::consts::PI] {
            let text = Value::from(x).to_string();
            let back = from_str(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn u64_counters_keep_full_precision() {
        let n = u64::MAX - 3;
        let text = Value::from(n).to_string();
        assert_eq!(from_str(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(from_str("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("-0.5").unwrap().as_f64(), Some(-0.5));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{0007}é—\u{1F600}";
        let text = Value::from(s).to_string();
        assert_eq!(from_str(&text).unwrap().as_str(), Some(s));
        // Escaped input forms parse too, including surrogate pairs.
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn strict_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\\x\"",
            "nan",
            "{1:2}",
            "[1] []",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accessors_navigate_nested_documents() {
        let v = from_str(r#"{"a":{"b":[1,2.5,"x"]},"ok":true}"#).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).and_then(Value::as_array).unwrap();
        assert_eq!(b[0].as_u64(), Some(1));
        assert_eq!(b[1].as_f64(), Some(2.5));
        assert_eq!(b[2].as_str(), Some("x"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn serialize_trait_and_to_string_agree_with_display() {
        struct Point {
            x: u64,
            y: f64,
        }
        impl Serialize for Point {
            fn to_value(&self) -> Value {
                let mut m = Map::new();
                m.insert("x", self.x);
                m.insert("y", self.y);
                Value::Object(m)
            }
        }
        let p = Point { x: 3, y: 0.25 };
        assert_eq!(to_string(&p), r#"{"x":3,"y":0.25}"#);
    }

    #[test]
    fn insert_replaces_duplicates_in_place() {
        let mut m = Map::new();
        m.insert("k", 1u64);
        m.insert("other", 2u64);
        m.insert("k", 9u64);
        assert_eq!(m.len(), 2);
        assert_eq!(Value::Object(m).to_string(), r#"{"k":9,"other":2}"#);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str(&deep).is_err());
    }
}
