//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so this workspace vendors
//! the few pieces of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges. The generator is SplitMix64 — deterministic across runs
//! and platforms, which is all the synthetic-data generators in
//! `cf-tensor::gen` require (values only need to be reproducible, not
//! cryptographic).
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xa: f32 = a.gen_range(-1.0f32..1.0);
//! let xb: f32 = b.gen_range(-1.0f32..1.0);
//! assert_eq!(xa, xb);
//! assert!((-1.0..1.0).contains(&xa));
//! ```

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, as in real `rand`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly, producing a `T`. Generic over the
/// output (rather than using an associated type) so that a literal like
/// `-0.5..0.5` adopts the binding's float width, exactly as with real
/// `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`'s bits.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng);
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t;
                // `as`-rounding can land exactly on the excluded upper
                // bound; fold that measure-zero case back to the start.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Unlike the real
    /// `StdRng` it is *not* cryptographically secure, but it is fast,
    /// deterministic across platforms, and statistically fine for
    /// synthetic benchmark data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x), "{x}");
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
            let m = r.gen_range(5u64..6);
            assert_eq!(m, 5);
            let i = r.gen_range(-3i32..4);
            assert!((-3..4).contains(&i));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
