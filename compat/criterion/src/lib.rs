//! Offline stand-in for the crates.io `criterion` crate (0.5 API subset).
//!
//! The build container has no registry access, so this workspace vendors a
//! small wall-clock benchmark harness with the same surface the repo's
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and the
//! `sample_size`/`measurement_time` builders. Per benchmark it prints the
//! minimum, median and mean sample time — no HTML reports, no statistical
//! regression testing.
//!
//! Set `CF_BENCH_SAMPLES` to override every group's sample count (handy in
//! CI, where `CF_BENCH_SAMPLES=3` keeps `cargo bench` fast).
//!
//! # Examples
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(5);
//! c.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: times closures and prints a summary line each.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark; sampling stops
    /// early once the cap is exceeded.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this harness takes no CLI args.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let samples = match std::env::var("CF_BENCH_SAMPLES") {
            Ok(v) => v.parse().unwrap_or(self.sample_size).max(1),
            Err(_) => self.sample_size,
        };
        let mut bencher = Bencher { samples: Vec::with_capacity(samples) };
        // Warm-up run (also primes caches the way criterion's warm-up does).
        f(&mut bencher);
        bencher.samples.clear();
        let started = Instant::now();
        while bencher.samples.len() < samples && started.elapsed() < self.measurement_time {
            f(&mut bencher);
        }
        bencher.report(name);
    }
}

/// Hands the benchmark body to the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f` (criterion's `iter`). Each call to the
    /// routine is one sample; the driver invokes the enclosing closure
    /// until it has enough samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.samples.push(t0.elapsed());
        drop(black_box(out));
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:40} no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:40} min {:>12} | median {:>12} | mean {:>12} | {} samples",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, in either criterion dialect:
/// `criterion_group!(name, target_a, target_b)` or the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.500 s");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        std::env::set_var("CF_BENCH_SAMPLES", "2");
        demo_group();
        std::env::remove_var("CF_BENCH_SAMPLES");
    }
}
