//! Offline stand-in for the crates.io `proptest` crate (1.x API subset).
//!
//! The build container has no registry access, so this workspace vendors
//! the slice of proptest its property tests use: the [`proptest!`] macro,
//! `prop_assert*`/[`prop_assume!`], range/tuple/`vec`/[`any`] strategies,
//! [`Strategy::prop_map`] and [`prop_oneof!`]. Cases are sampled from a
//! deterministic per-test PRNG; there is **no shrinking** — a failing case
//! panics with the sampled values' message instead of a minimised one.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes(); // in a real test, add #[test] above the fn
//! ```

use std::ops::Range;

pub mod test_runner {
    //! Case-level plumbing used by the macro expansions.

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the runner panics with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the runner draws new ones.
        Reject,
    }

    /// The deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one case, seeded from the test identity.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// A uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (the `#![proptest_config(..)]` block attribute).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must accumulate.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: strategies sample directly
/// and nothing shrinks.
pub trait Strategy: Sized {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every sampled value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix arms in [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between same-valued strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A uniform union of `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

/// A strategy producing one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// One uniform sample over the whole domain.
    fn arb_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arb_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arb_sample(rng)
    }
}

/// The canonical strategy for `T`'s whole domain (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test identity — the per-test seed base, stable across
/// runs so failures reproduce.
#[doc(hidden)]
pub fn __seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// The macro-based test harness; see the crate docs for the dialect.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut passed = 0u32;
                let mut rejected = 0u32;
                let mut case = 0u32;
                while passed < config.cases {
                    let mut __rng = $crate::test_runner::TestRng::new($crate::__seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    ));
                    case += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest: too many prop_assume! rejections ({rejected})"
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{} failed: {}", case - 1, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case when `cond` is false, drawing fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A union of strategies with a common value type, sampled uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    /// The `prop::` path used by `prop::collection::vec(..)` etc.
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn ranges_tuples_vecs_and_oneof(
            n in 1usize..9,
            (a, b) in (0u64..10, 0u64..10),
            v in prop::collection::vec(0u32..5, 1..4),
            flag in any::<bool>(),
            pick in prop_oneof![
                (1usize..3).prop_map(|x| x * 10),
                (5usize..7).prop_map(|x| x * 100),
            ],
        ) {
            prop_assume!(n != 3);
            prop_assert!(n < 9 && n != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
            let _ = flag;
            prop_assert!(pick == 10 || pick == 20 || pick == 500 || pick == 600, "pick {pick}");
            prop_assert_eq!(n + 1, 1 + n);
        }
    }

    #[test]
    fn runs_and_is_deterministic() {
        ranges_tuples_vecs_and_oneof();
        assert_eq!(crate::__seed("a::b", 3), crate::__seed("a::b", 3));
        assert_ne!(crate::__seed("a::b", 3), crate::__seed("a::b", 4));
        assert_ne!(crate::__seed("a::b", 3), crate::__seed("a::c", 3));
    }
}
